package rel

import (
	"errors"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"ritree/internal/pagestore"
)

func newTestDB(t *testing.T) *DB {
	t.Helper()
	st := pagestore.NewMem(pagestore.Options{PageSize: 512, CacheSize: 64})
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateInsertGet(t *testing.T) {
	db := newTestDB(t)
	tab, err := db.CreateTable("intervals", []string{"node", "lower", "upper", "id"})
	if err != nil {
		t.Fatal(err)
	}
	rid, err := tab.Insert([]int64{8, 5, 12, 1})
	if err != nil {
		t.Fatal(err)
	}
	row, err := tab.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{8, 5, 12, 1}
	for i := range want {
		if row[i] != want[i] {
			t.Fatalf("row = %v, want %v", row, want)
		}
	}
	if tab.RowCount() != 1 {
		t.Fatalf("RowCount = %d, want 1", tab.RowCount())
	}
}

func TestSchemaValidation(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.CreateTable("t", nil); err == nil {
		t.Fatal("empty schema accepted")
	}
	if _, err := db.CreateTable("t", []string{"a", "a"}); err == nil {
		t.Fatal("duplicate column accepted")
	}
	if _, err := db.CreateTable("t", []string{""}); err == nil {
		t.Fatal("empty column name accepted")
	}
	if _, err := db.CreateTable("", []string{"a"}); err == nil {
		t.Fatal("empty table name accepted")
	}
	if _, err := db.CreateTable("ok", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("ok", []string{"a"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate table error = %v", err)
	}
}

func TestInsertWrongWidth(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a", "b"})
	if _, err := tab.Insert([]int64{1}); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("err = %v, want ErrRowWidth", err)
	}
}

func TestDeleteRow(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a"})
	rid, _ := tab.Insert([]int64{7})
	row, err := tab.DeleteRow(rid)
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 7 {
		t.Fatalf("deleted row = %v, want [7]", row)
	}
	if _, err := tab.Get(rid); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("Get after delete = %v", err)
	}
	if _, err := tab.DeleteRow(rid); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("double delete = %v", err)
	}
	if tab.RowCount() != 0 {
		t.Fatalf("RowCount = %d", tab.RowCount())
	}
}

func TestSlotReuseAfterDelete(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a"})
	rid1, _ := tab.Insert([]int64{1})
	tab.DeleteRow(rid1)
	rid2, _ := tab.Insert([]int64{2})
	if rid2 != rid1 {
		t.Fatalf("slot not reused: %v then %v", rid1, rid2)
	}
}

func TestScanManyPages(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a", "b", "c", "d"})
	const n = 1000
	for i := 0; i < n; i++ {
		if _, err := tab.Insert([]int64{int64(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[int64]bool)
	err := tab.Scan(func(rid RowID, row []int64) bool {
		if seen[row[0]] {
			t.Fatalf("row %d seen twice", row[0])
		}
		seen[row[0]] = true
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("scanned %d rows, want %d", len(seen), n)
	}
}

func TestIndexMaintenance(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("iv", []string{"node", "lower", "upper", "id"})
	// Pre-populate, then create the index (backfill path).
	for i := 0; i < 100; i++ {
		tab.Insert([]int64{int64(i % 10), int64(i), int64(i + 5), int64(i)})
	}
	ix, err := db.CreateIndex("lowerIndex", "iv", []string{"node", "lower"})
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 100 {
		t.Fatalf("backfilled index Len = %d, want 100", ix.Len())
	}
	// New inserts are maintained.
	tab.Insert([]int64{3, 1000, 1010, 200})
	if ix.Len() != 101 {
		t.Fatalf("index Len after insert = %d, want 101", ix.Len())
	}
	// Scan node=3: rows with i%10==3 plus the new one.
	var lowers []int64
	err = ix.Scan([]int64{3}, []int64{3}, func(key []int64, rid RowID) bool {
		lowers = append(lowers, key[1])
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lowers) != 11 {
		t.Fatalf("node=3 scan found %d entries, want 11", len(lowers))
	}
	if !sort.SliceIsSorted(lowers, func(i, j int) bool { return lowers[i] < lowers[j] }) {
		t.Fatal("index scan not ordered by lower")
	}
	// Deletes are maintained.
	n, err := tab.DeleteWhere(func(row []int64) bool { return row[0] == 3 })
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 {
		t.Fatalf("DeleteWhere removed %d, want 11", n)
	}
	cnt, _ := ix.CountRange([]int64{3}, []int64{3})
	if cnt != 0 {
		t.Fatalf("index still has %d entries for node=3", cnt)
	}
}

func TestIndexRowIDsResolve(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"k", "v"})
	ids := map[int64]RowID{}
	for i := 0; i < 50; i++ {
		rid, _ := tab.Insert([]int64{int64(i), int64(i * 100)})
		ids[int64(i)] = rid
	}
	ix, _ := db.CreateIndex("ik", "t", []string{"k"})
	err := ix.Scan(nil, nil, func(key []int64, rid RowID) bool {
		if ids[key[0]] != rid {
			t.Fatalf("index rid for k=%d is %v, want %v", key[0], rid, ids[key[0]])
		}
		row, err := tab.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if row[1] != key[0]*100 {
			t.Fatalf("row via index = %v", row)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCreateIndexErrors(t *testing.T) {
	db := newTestDB(t)
	db.CreateTable("t", []string{"a", "b"})
	if _, err := db.CreateIndex("i", "missing", []string{"a"}); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.CreateIndex("i", "t", []string{"zzz"}); !errors.Is(err, ErrNoSuchColumn) {
		t.Fatalf("err = %v", err)
	}
	if _, err := db.CreateIndex("i", "t", nil); err == nil {
		t.Fatal("empty column list accepted")
	}
	if _, err := db.CreateIndex("i", "t", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("i", "t", []string{"b"}); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestDropIndex(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a"})
	before := db.Store().NumAllocated()
	db.CreateIndex("i", "t", []string{"a"})
	for i := 0; i < 500; i++ {
		tab.Insert([]int64{int64(i)})
	}
	if err := db.DropIndex("i"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Index("i"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("Index after drop = %v", err)
	}
	// Inserts no longer maintain the dropped index.
	if _, err := tab.Insert([]int64{9999}); err != nil {
		t.Fatal(err)
	}
	_ = before
}

func TestDropTableFreesEverything(t *testing.T) {
	db := newTestDB(t)
	before := db.Store().NumAllocated()
	tab, _ := db.CreateTable("t", []string{"a", "b"})
	db.CreateIndex("i1", "t", []string{"a"})
	db.CreateIndex("i2", "t", []string{"b", "a"})
	for i := 0; i < 1000; i++ {
		tab.Insert([]int64{int64(i), int64(-i)})
	}
	if err := db.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if got := db.Store().NumAllocated(); got != before {
		t.Fatalf("allocated pages after drop = %d, want %d", got, before)
	}
	if _, err := db.Table("t"); !errors.Is(err, ErrNoSuchTable) {
		t.Fatalf("Table after drop = %v", err)
	}
	if _, err := db.Index("i1"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("Index after table drop = %v", err)
	}
}

func TestCatalogPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.pages")
	be, err := pagestore.OpenFileBackend(path, 512)
	if err != nil {
		t.Fatal(err)
	}
	st, err := pagestore.New(be, pagestore.Options{PageSize: 512, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	root := db.CatalogRoot()
	tab, _ := db.CreateTable("intervals", []string{"node", "lower", "upper", "id"})
	db.CreateIndex("lowerIndex", "intervals", []string{"node", "lower"})
	db.CreateIndex("upperIndex", "intervals", []string{"node", "upper"})
	for i := 0; i < 200; i++ {
		tab.Insert([]int64{int64(i % 16), int64(i), int64(i + 3), int64(i)})
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	be2, _ := pagestore.OpenFileBackend(path, 512)
	st2, err := pagestore.New(be2, pagestore.Options{PageSize: 512, CacheSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDB(st2, root)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tab2, err := db2.Table("intervals")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.RowCount() != 200 {
		t.Fatalf("reopened RowCount = %d, want 200", tab2.RowCount())
	}
	ix, err := db2.Index("upperIndex")
	if err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 200 {
		t.Fatalf("reopened index Len = %d, want 200", ix.Len())
	}
	n, _ := ix.CountRange([]int64{5}, []int64{5})
	if n != 200/16+1 { // i%16==5: i in {5,21,...,197} -> 13 values
		t.Fatalf("node=5 count = %d, want 13", n)
	}
	// The reopened table is fully usable.
	rid, err := tab2.Insert([]int64{1, 2, 3, 999})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab2.Get(rid); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadIndex(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a", "b"})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		tab.Insert([]int64{rng.Int63n(100), int64(i)})
	}
	db.CreateIndex("i", "t", []string{"a", "b"})
	if err := db.BulkLoadIndex("i"); err != nil {
		t.Fatal(err)
	}
	ix, _ := db.Index("i")
	if ix.Len() != 2000 {
		t.Fatalf("bulk index Len = %d", ix.Len())
	}
	// Verify ordering and rowid resolution.
	var prev []int64
	err := ix.Scan(nil, nil, func(key []int64, rid RowID) bool {
		cur := append([]int64(nil), key...)
		if prev != nil && CompareTuples(prev, cur) > 0 {
			t.Fatalf("bulk index out of order: %v then %v", prev, cur)
		}
		prev = cur
		row, err := tab.Get(rid)
		if err != nil || row[0] != key[0] || row[1] != key[1] {
			t.Fatalf("bulk index rid mismatch: key %v row %v err %v", key, row, err)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Index still maintained after bulk rebuild.
	tab.Insert([]int64{50, 99999})
	n, _ := ix.CountRange([]int64{50, 99999}, []int64{50, 99999})
	if n != 1 {
		t.Fatalf("post-bulk insert not in index (n=%d)", n)
	}
}

func TestRandomizedTableIndexConsistency(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"k", "v"})
	db.CreateIndex("ik", "t", []string{"k"})
	ix, _ := db.Index("ik")
	rng := rand.New(rand.NewSource(11))
	type rec struct {
		k, v int64
	}
	model := map[RowID]rec{}
	var rids []RowID
	for step := 0; step < 4000; step++ {
		if rng.Intn(3) < 2 || len(rids) == 0 { // insert
			r := rec{rng.Int63n(50), rng.Int63()}
			rid, err := tab.Insert([]int64{r.k, r.v})
			if err != nil {
				t.Fatal(err)
			}
			model[rid] = r
			rids = append(rids, rid)
		} else { // delete
			i := rng.Intn(len(rids))
			rid := rids[i]
			if _, err := tab.DeleteRow(rid); err != nil {
				t.Fatal(err)
			}
			delete(model, rid)
			rids = append(rids[:i], rids[i+1:]...)
		}
	}
	if int64(len(model)) != tab.RowCount() {
		t.Fatalf("RowCount = %d, model %d", tab.RowCount(), len(model))
	}
	if int64(len(model)) != ix.Len() {
		t.Fatalf("index Len = %d, model %d", ix.Len(), len(model))
	}
	// Every index entry resolves to a matching live row.
	seen := 0
	err := ix.Scan(nil, nil, func(key []int64, rid RowID) bool {
		r, ok := model[rid]
		if !ok || r.k != key[0] {
			t.Fatalf("index entry %v -> %v not in model (%v)", key, rid, r)
		}
		seen++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != len(model) {
		t.Fatalf("index scan saw %d entries, model %d", seen, len(model))
	}
}

func TestLargeCatalogSpansPages(t *testing.T) {
	db := newTestDB(t)
	// Enough tables that the JSON catalog exceeds one 512-byte page.
	for i := 0; i < 30; i++ {
		name := "table_with_a_rather_long_name_" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, err := db.CreateTable(name, []string{"col_one", "col_two", "col_three"}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.Tables()); got != 30 {
		t.Fatalf("Tables() = %d, want 30", got)
	}
	// Shrink it again (exercise the leftover-page free path).
	for _, n := range db.Tables()[5:] {
		if err := db.DropTable(n); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(db.Tables()); got != 5 {
		t.Fatalf("Tables() after drops = %d, want 5", got)
	}
}
