package rel

import (
	"fmt"
	"sort"
	"sync"

	"ritree/internal/btree"
	"ritree/internal/pagestore"
)

// DB is a database: a catalog of tables and indexes over one page store.
//
// Concurrency: all DDL and table DML serialize through one RW mutex; scans
// take the read side and therefore must not mutate tables from their
// callbacks (the SQL layer above materializes result sets before issuing
// DML, matching the single-statement semantics of the paper's experiments).
type DB struct {
	mu       sync.RWMutex
	st       *pagestore.Store
	tables   map[string]*Table
	indexes  map[string]*Index
	customIx map[string]CustomIndexDef   // persisted domain-index definitions (§5)
	blobs    map[string]pagestore.PageID // named blob chain roots (index snapshots)
	catRoot  pagestore.PageID
}

// CreateDB initializes a fresh database on an empty page store.
func CreateDB(st *pagestore.Store) (*DB, error) {
	root, err := st.Allocate()
	if err != nil {
		return nil, err
	}
	db := &DB{
		st:       st,
		tables:   make(map[string]*Table),
		indexes:  make(map[string]*Index),
		customIx: make(map[string]CustomIndexDef),
		blobs:    make(map[string]pagestore.PageID),
		catRoot:  root,
	}
	if err := db.saveCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// OpenDB loads the catalog of an existing database. catRoot is the page id
// returned at creation time (the first allocated page, normally 1).
func OpenDB(st *pagestore.Store, catRoot pagestore.PageID) (*DB, error) {
	db := &DB{
		st:       st,
		tables:   make(map[string]*Table),
		indexes:  make(map[string]*Index),
		customIx: make(map[string]CustomIndexDef),
		blobs:    make(map[string]pagestore.PageID),
		catRoot:  catRoot,
	}
	if err := db.loadCatalog(); err != nil {
		return nil, err
	}
	return db, nil
}

// Store exposes the underlying page store (for I/O statistics).
func (db *DB) Store() *pagestore.Store { return db.st }

// Stats returns the page-store I/O counters.
func (db *DB) Stats() pagestore.Stats { return db.st.Stats() }

// ResetStats zeroes the page-store I/O counters.
func (db *DB) ResetStats() { db.st.ResetStats() }

// CatalogRoot returns the catalog root page id (pass to OpenDB).
func (db *DB) CatalogRoot() pagestore.PageID { return db.catRoot }

// CreateTable defines a new table with the given int64 columns.
func (db *DB) CreateTable(name string, columns []string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("rel: empty table name")
	}
	if _, ok := db.tables[name]; ok {
		return nil, fmt.Errorf("%w: table %s", ErrExists, name)
	}
	schema := Schema{Columns: append([]string(nil), columns...)}
	if err := schema.validate(); err != nil {
		return nil, err
	}
	h, err := createHeap(db.st, schema.NumCols())
	if err != nil {
		return nil, err
	}
	t := &Table{db: db, name: name, schema: schema, h: h}
	db.tables[name] = t
	if err := db.saveCatalog(); err != nil {
		delete(db.tables, name)
		return nil, err
	}
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	return t, nil
}

// Tables returns the names of all tables, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CreateIndex defines a composite index on the given columns of table and
// backfills it from the existing rows.
func (db *DB) CreateIndex(name, table string, columns []string) (*Index, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.indexes[name]; ok {
		return nil, fmt.Errorf("%w: index %s", ErrExists, name)
	}
	// Built-in and custom indexes share one namespace: DROP INDEX resolves
	// by name alone, so a built-in index must not shadow a domain index
	// (case-insensitively — the SQL layer folds identifiers to lower case).
	if def, ok := db.customIndexNamed(name); ok {
		return nil, fmt.Errorf("%w: index %s (custom)", ErrExists, def.Name)
	}
	t, ok := db.tables[table]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchTable, table)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("rel: index %s has no columns", name)
	}
	cols := make([]int, len(columns))
	for i, c := range columns {
		p := t.schema.ColIndex(c)
		if p < 0 {
			return nil, fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, table, c)
		}
		cols[i] = p
	}
	tree, err := btree.Create(db.st, len(cols)+1)
	if err != nil {
		return nil, err
	}
	ix := &Index{name: name, table: table, cols: cols, tree: tree}
	// Backfill from existing rows with a sorted bulk load (row-at-a-time
	// B+-tree inserts would make large CREATE INDEX statements quadratic
	// in I/O under a small buffer cache). Keys are collected in a flat
	// fixed-stride buffer to keep memory linear for multi-million-row
	// backfills.
	keys := newFlatTuples(len(cols)+1, int(t.h.rowCount))
	err = t.h.scan(func(rid RowID, row []int64) (bool, error) {
		keys.appendTuple(ix.keyFor(row, rid))
		return true, nil
	})
	if err == nil && keys.Len() > 0 {
		keys.sort()
		err = tree.BulkLoad(keys.next())
	}
	if err != nil {
		_ = tree.Drop()
		return nil, err
	}
	t.indexes = append(t.indexes, ix)
	db.indexes[name] = ix
	if err := db.saveCatalog(); err != nil {
		t.indexes = t.indexes[:len(t.indexes)-1]
		delete(db.indexes, name)
		_ = tree.Drop()
		return nil, err
	}
	return ix, nil
}

// Index returns the named index.
func (db *DB) Index(name string) (*Index, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ix, ok := db.indexes[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoSuchIndex, name)
	}
	return ix, nil
}

// DropIndex removes the named index and frees its pages.
func (db *DB) DropIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ix, ok := db.indexes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchIndex, name)
	}
	t := db.tables[ix.table]
	for i, cand := range t.indexes {
		if cand == ix {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			break
		}
	}
	delete(db.indexes, name)
	if err := ix.tree.Drop(); err != nil {
		return err
	}
	return db.saveCatalog()
}

// DropTable removes the table, its rows, and all of its indexes.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, name)
	}
	// Refuse while domain-index definitions reference the table: silently
	// deleting them would orphan their hidden storage, and keeping them
	// would leave a catalog that refuses to load (missing table). The
	// engine's DROP TABLE cascades definitions (and storage) before calling
	// here; direct rel callers must RemoveCustomIndex first.
	for n, def := range db.customIx {
		if def.Table == name {
			return fmt.Errorf("rel: table %s is indexed by domain index %s; remove that index first", name, n)
		}
	}
	for _, ix := range t.indexes {
		delete(db.indexes, ix.name)
		if err := ix.tree.Drop(); err != nil {
			return err
		}
	}
	if err := t.h.drop(); err != nil {
		return err
	}
	delete(db.tables, name)
	return db.saveCatalog()
}

// Flush writes all dirty pages and the catalog to the backend.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.st.FlushAll()
}

// Close flushes and closes the underlying store.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.st.Close()
}
