package rel

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"ritree/internal/pagestore"
)

func TestCustomIndexDefRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.pages")
	open := func() *DB {
		t.Helper()
		be, err := pagestore.OpenFileBackend(path, 1024)
		if err != nil {
			t.Fatal(err)
		}
		st, err := pagestore.New(be, pagestore.Options{PageSize: 1024, CacheSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		var db *DB
		if st.NumAllocated() == 0 {
			db, err = CreateDB(st)
		} else {
			db, err = OpenDB(st, 1)
		}
		if err != nil {
			t.Fatal(err)
		}
		return db
	}

	db := open()
	if _, err := db.CreateTable("ev", []string{"lo", "hi", "id"}); err != nil {
		t.Fatal(err)
	}
	def := CustomIndexDef{Name: "ev_iv", IndexType: "ritree", Table: "ev", Columns: []string{"lo", "hi"}}
	if err := db.RecordCustomIndex(def); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordCustomIndex(CustomIndexDef{Name: "ev_mm", IndexType: "hint", Table: "ev", Columns: []string{"lo", "hi"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = open()
	defs := db.CustomIndexes()
	if len(defs) != 2 {
		t.Fatalf("reopened catalog has %d custom indexes, want 2: %v", len(defs), defs)
	}
	if defs[0].Name != "ev_iv" || defs[0].IndexType != "ritree" || defs[0].Table != "ev" ||
		len(defs[0].Columns) != 2 || defs[0].Columns[0] != "lo" || defs[0].Columns[1] != "hi" {
		t.Fatalf("defs[0] = %+v", defs[0])
	}
	if defs[1].Name != "ev_mm" || defs[1].IndexType != "hint" {
		t.Fatalf("defs[1] = %+v", defs[1])
	}
	got, ok := db.CustomIndex("ev_mm")
	if !ok || got.IndexType != "hint" {
		t.Fatalf("CustomIndex(ev_mm) = %+v, %v", got, ok)
	}
	// Case-insensitive lookup and removal: the SQL layer folds identifiers
	// to lower case, so mixed-case definitions must still resolve.
	if got, ok := db.CustomIndex("EV_MM"); !ok || got.Name != "ev_mm" {
		t.Fatalf("CustomIndex(EV_MM) = %+v, %v", got, ok)
	}
	if err := db.RemoveCustomIndex("EV_IV"); err != nil {
		t.Fatalf("case-insensitive remove: %v", err)
	}
	if err := db.RecordCustomIndex(def); err != nil {
		t.Fatalf("re-record after case-insensitive remove: %v", err)
	}
	if err := db.RemoveCustomIndex("ev_iv"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db = open()
	defs = db.CustomIndexes()
	if len(defs) != 1 || defs[0].Name != "ev_mm" {
		t.Fatalf("after remove+reopen: %v", defs)
	}
	if err := db.RemoveCustomIndex("ev_iv"); !errors.Is(err, ErrNoSuchIndex) {
		t.Fatalf("double remove = %v, want ErrNoSuchIndex", err)
	}
	db.Close()
}

func TestCustomIndexDefValidation(t *testing.T) {
	db := newTestDB(t)
	if _, err := db.CreateTable("ev", []string{"lo", "hi"}); err != nil {
		t.Fatal(err)
	}
	cases := []CustomIndexDef{
		{Name: "", IndexType: "ritree", Table: "ev", Columns: []string{"lo"}},
		{Name: "x", IndexType: "", Table: "ev", Columns: []string{"lo"}},
		{Name: "x", IndexType: "ritree", Table: "missing", Columns: []string{"lo"}},
		{Name: "x", IndexType: "ritree", Table: "ev", Columns: nil},
		{Name: "x", IndexType: "ritree", Table: "ev", Columns: []string{"nope"}},
	}
	for _, def := range cases {
		if err := db.RecordCustomIndex(def); err == nil {
			t.Fatalf("RecordCustomIndex(%+v) succeeded, want error", def)
		}
	}
	if len(db.CustomIndexes()) != 0 {
		t.Fatalf("failed records left definitions behind: %v", db.CustomIndexes())
	}
}

func TestIndexNamespaceIsShared(t *testing.T) {
	// Built-in and custom indexes occupy ONE name namespace: a duplicate in
	// either direction must fail, so DROP INDEX always resolves uniquely.
	db := newTestDB(t)
	if _, err := db.CreateTable("ev", []string{"lo", "hi"}); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordCustomIndex(CustomIndexDef{Name: "x", IndexType: "ritree", Table: "ev", Columns: []string{"lo"}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateIndex("x", "ev", []string{"lo"}); !errors.Is(err, ErrExists) {
		t.Fatalf("builtin CREATE INDEX over custom name = %v, want ErrExists", err)
	}
	if _, err := db.CreateIndex("y", "ev", []string{"lo"}); err != nil {
		t.Fatal(err)
	}
	if err := db.RecordCustomIndex(CustomIndexDef{Name: "y", IndexType: "hint", Table: "ev", Columns: []string{"lo"}}); !errors.Is(err, ErrExists) {
		t.Fatalf("custom record over builtin name = %v, want ErrExists", err)
	}
	// Case-insensitive: the engine's registration maps fold names to lower
	// case, so definitions differing only in case must collide here too.
	if err := db.RecordCustomIndex(CustomIndexDef{Name: "X", IndexType: "hint", Table: "ev", Columns: []string{"lo"}}); !errors.Is(err, ErrExists) {
		t.Fatalf("case-variant custom record = %v, want ErrExists", err)
	}
	if err := db.RecordCustomIndex(CustomIndexDef{Name: "Y", IndexType: "hint", Table: "ev", Columns: []string{"lo"}}); !errors.Is(err, ErrExists) {
		t.Fatalf("case-variant record over builtin = %v, want ErrExists", err)
	}
	if _, err := db.CreateIndex("X", "ev", []string{"lo"}); !errors.Is(err, ErrExists) {
		t.Fatalf("case-variant builtin over custom = %v, want ErrExists", err)
	}
}

func TestDropTableRefusesWhileCustomIndexDefsExist(t *testing.T) {
	// Silently deleting the definitions would orphan their hidden storage;
	// keeping them would leave a catalog that refuses to load. DropTable
	// therefore refuses until the definitions are removed (the engine's
	// DROP TABLE cascades them first).
	db := newTestDB(t)
	if _, err := db.CreateTable("a", []string{"lo", "hi"}); err != nil {
		t.Fatal(err)
	}
	db.RecordCustomIndex(CustomIndexDef{Name: "a_iv", IndexType: "ritree", Table: "a", Columns: []string{"lo"}})
	if err := db.DropTable("a"); err == nil || !strings.Contains(err.Error(), "a_iv") {
		t.Fatalf("DropTable with domain index = %v, want refusal naming a_iv", err)
	}
	if err := db.RemoveCustomIndex("a_iv"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatalf("DropTable after RemoveCustomIndex = %v", err)
	}
}

func TestCatalogBackwardCompatible(t *testing.T) {
	// Catalogs written before the custom_indexes field decode cleanly (the
	// field is simply absent), and a catalog without custom indexes is
	// byte-identical to the old format thanks to omitempty — old binaries
	// can read new files until a domain index is actually recorded.
	var data catalogData
	old := []byte(`{"tables":[{"name":"t","columns":["a"],"header":3}],"indexes":null}`)
	if err := json.Unmarshal(old, &data); err != nil {
		t.Fatal(err)
	}
	if data.CustomIndexes != nil {
		t.Fatalf("decoded custom indexes from old catalog: %v", data.CustomIndexes)
	}
	out, err := json.Marshal(&catalogData{Tables: data.Tables})
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `{"tables":[{"name":"t","columns":["a"],"header":3}],"indexes":null}` {
		t.Fatalf("catalog without custom indexes changed format: %s", out)
	}
}
