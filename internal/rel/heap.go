package rel

import (
	"encoding/binary"
	"fmt"

	"ritree/internal/pagestore"
)

// Heap page layout:
//
//	offset 0:  type byte (heapPageType)
//	offset 1:  reserved
//	offset 2:  live-row count uint16
//	offset 4:  next heap page in the table chain (uint32)
//	offset 8:  reserved (8 bytes)
//	offset 16: occupancy bitmap (slotsPerPage bits, rounded up to bytes)
//	then:      slotsPerPage fixed-width rows of ncols*8 bytes
const (
	heapPageType   = byte(3)
	heapHeaderSize = 16
)

// heapGeometry computes how many fixed-width rows fit in a page.
func heapGeometry(pageSize, rowSize int) (slots, bitmapBytes, rowBase int) {
	slots = (pageSize - heapHeaderSize) * 8 / (rowSize*8 + 1)
	for slots > 0 && heapHeaderSize+(slots+7)/8+slots*rowSize > pageSize {
		slots--
	}
	if slots > 0xffff {
		slots = 0xffff // RowID reserves 16 bits for the slot
	}
	bitmapBytes = (slots + 7) / 8
	rowBase = heapHeaderSize + bitmapBytes
	return slots, bitmapBytes, rowBase
}

// heap manages the row pages of one table.
type heap struct {
	st     *pagestore.Store
	ncols  int
	header pagestore.PageID // table header page

	rowSize     int
	slots       int
	bitmapBytes int
	rowBase     int

	// Cached header fields; flushed through writeHeader.
	firstPage pagestore.PageID
	lastPage  pagestore.PageID
	rowCount  int64
	freeHint  pagestore.PageID // page that most recently gained a free slot
	// chk is the content checksum: XOR of RowChecksum(row, rid) over the
	// live rows. Headers written before the field existed read as 0; the
	// consumers of the checksum (domain-index staleness checks) treat a
	// matching pair of maintained values as the signal, so a legacy zero
	// on both sides stays compatible.
	chk uint64
}

// Table header page layout: magic, first, last, rowCount, freeHint, chk.
const heapHeaderMagic = uint32(0x52495448) // "RITH"

func createHeap(st *pagestore.Store, ncols int) (*heap, error) {
	header, err := st.Allocate()
	if err != nil {
		return nil, err
	}
	h := &heap{st: st, ncols: ncols, header: header, rowSize: ncols * 8}
	h.slots, h.bitmapBytes, h.rowBase = heapGeometry(st.PageSize(), h.rowSize)
	if h.slots < 1 {
		return nil, fmt.Errorf("rel: page size %d too small for %d-column rows", st.PageSize(), ncols)
	}
	first, err := h.newPage()
	if err != nil {
		return nil, err
	}
	h.firstPage, h.lastPage, h.freeHint = first, first, first
	return h, h.writeHeader()
}

func openHeap(st *pagestore.Store, header pagestore.PageID, ncols int) (*heap, error) {
	h := &heap{st: st, ncols: ncols, header: header, rowSize: ncols * 8}
	h.slots, h.bitmapBytes, h.rowBase = heapGeometry(st.PageSize(), h.rowSize)
	p, err := st.Get(header)
	if err != nil {
		return nil, err
	}
	defer p.Release()
	d := p.Data()
	if binary.LittleEndian.Uint32(d[0:4]) != heapHeaderMagic {
		return nil, fmt.Errorf("rel: page %d is not a table header", header)
	}
	h.firstPage = pagestore.PageID(binary.LittleEndian.Uint32(d[4:8]))
	h.lastPage = pagestore.PageID(binary.LittleEndian.Uint32(d[8:12]))
	h.rowCount = int64(binary.LittleEndian.Uint64(d[12:20]))
	h.freeHint = pagestore.PageID(binary.LittleEndian.Uint32(d[20:24]))
	h.chk = binary.LittleEndian.Uint64(d[24:32])
	return h, nil
}

func (h *heap) writeHeader() error {
	p, err := h.st.GetMut(h.header)
	if err != nil {
		return err
	}
	d := p.Data()
	binary.LittleEndian.PutUint32(d[0:4], heapHeaderMagic)
	binary.LittleEndian.PutUint32(d[4:8], uint32(h.firstPage))
	binary.LittleEndian.PutUint32(d[8:12], uint32(h.lastPage))
	binary.LittleEndian.PutUint64(d[12:20], uint64(h.rowCount))
	binary.LittleEndian.PutUint32(d[20:24], uint32(h.freeHint))
	binary.LittleEndian.PutUint64(d[24:32], h.chk)
	p.Release()
	return nil
}

func (h *heap) newPage() (pagestore.PageID, error) {
	id, err := h.st.Allocate()
	if err != nil {
		return 0, err
	}
	p, err := h.st.GetMut(id)
	if err != nil {
		return 0, err
	}
	p.Data()[0] = heapPageType
	p.Release()
	return id, nil
}

func pageCount(d []byte) int       { return int(binary.LittleEndian.Uint16(d[2:4])) }
func setPageCount(d []byte, c int) { binary.LittleEndian.PutUint16(d[2:4], uint16(c)) }
func pageNext(d []byte) pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(d[4:8]))
}
func setPageNext(d []byte, id pagestore.PageID) {
	binary.LittleEndian.PutUint32(d[4:8], uint32(id))
}

func (h *heap) slotUsed(d []byte, slot int) bool {
	return d[heapHeaderSize+slot/8]&(1<<(slot%8)) != 0
}
func (h *heap) setSlot(d []byte, slot int, used bool) {
	if used {
		d[heapHeaderSize+slot/8] |= 1 << (slot % 8)
	} else {
		d[heapHeaderSize+slot/8] &^= 1 << (slot % 8)
	}
}

func (h *heap) rowAt(d []byte, slot int) []byte {
	off := h.rowBase + slot*h.rowSize
	return d[off : off+h.rowSize]
}

func encodeRow(dst []byte, row []int64) {
	for i, v := range row {
		binary.LittleEndian.PutUint64(dst[i*8:], uint64(v))
	}
}

func decodeRow(dst []int64, src []byte) {
	for i := range dst {
		dst[i] = int64(binary.LittleEndian.Uint64(src[i*8:]))
	}
}

// insert stores row and returns its RowID.
func (h *heap) insert(row []int64) (RowID, error) {
	if len(row) != h.ncols {
		return 0, ErrRowWidth
	}
	// Try the free hint first, then the last page, then grow.
	for _, cand := range []pagestore.PageID{h.freeHint, h.lastPage} {
		if cand == pagestore.InvalidPage {
			continue
		}
		rid, ok, err := h.tryInsertInto(cand, row)
		if err != nil {
			return 0, err
		}
		if ok {
			h.rowCount++
			h.chk ^= RowChecksum(row, rid)
			return rid, h.writeHeader()
		}
	}
	id, err := h.newPage()
	if err != nil {
		return 0, err
	}
	lp, err := h.st.GetMut(h.lastPage)
	if err != nil {
		return 0, err
	}
	setPageNext(lp.Data(), id)
	lp.Release()
	h.lastPage = id
	h.freeHint = id
	rid, ok, err := h.tryInsertInto(id, row)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("rel: fresh heap page %d rejected insert", id)
	}
	h.rowCount++
	h.chk ^= RowChecksum(row, rid)
	return rid, h.writeHeader()
}

func (h *heap) tryInsertInto(id pagestore.PageID, row []int64) (RowID, bool, error) {
	p, err := h.st.Get(id)
	if err != nil {
		return 0, false, err
	}
	defer p.Release()
	d := p.Data()
	if d[0] != heapPageType {
		return 0, false, fmt.Errorf("rel: page %d is not a heap page", id)
	}
	c := pageCount(d)
	if c >= h.slots {
		return 0, false, nil
	}
	for slot := 0; slot < h.slots; slot++ {
		if !h.slotUsed(d, slot) {
			p.BeginWrite()
			encodeRow(h.rowAt(d, slot), row)
			h.setSlot(d, slot, true)
			setPageCount(d, c+1)
			return makeRowID(uint32(id), slot), true, nil
		}
	}
	return 0, false, fmt.Errorf("rel: heap page %d count %d but no free slot", id, c)
}

// get reads the row at rid into dst (which must have ncols room).
func (h *heap) get(rid RowID, dst []int64) error {
	pid := pagestore.PageID(rid.page())
	slot := rid.slot()
	if pid == pagestore.InvalidPage || slot >= h.slots {
		return ErrNoSuchRow
	}
	p, err := h.st.Get(pid)
	if err != nil {
		return ErrNoSuchRow
	}
	defer p.Release()
	d := p.Data()
	if d[0] != heapPageType || !h.slotUsed(d, slot) {
		return ErrNoSuchRow
	}
	decodeRow(dst, h.rowAt(d, slot))
	return nil
}

// update overwrites the row at rid in place, folding the old and new
// contents into the content checksum.
func (h *heap) update(rid RowID, row []int64) error {
	pid := pagestore.PageID(rid.page())
	slot := rid.slot()
	if pid == pagestore.InvalidPage || slot >= h.slots {
		return ErrNoSuchRow
	}
	p, err := h.st.Get(pid)
	if err != nil {
		return ErrNoSuchRow
	}
	d := p.Data()
	if d[0] != heapPageType || !h.slotUsed(d, slot) {
		p.Release()
		return ErrNoSuchRow
	}
	old := make([]int64, h.ncols)
	decodeRow(old, h.rowAt(d, slot))
	p.BeginWrite()
	encodeRow(h.rowAt(d, slot), row)
	p.Release()
	h.chk ^= RowChecksum(old, rid) ^ RowChecksum(row, rid)
	return h.writeHeader()
}

// delete removes the row at rid, returning the deleted contents in dst.
func (h *heap) delete(rid RowID, dst []int64) error {
	pid := pagestore.PageID(rid.page())
	slot := rid.slot()
	if pid == pagestore.InvalidPage || slot >= h.slots {
		return ErrNoSuchRow
	}
	p, err := h.st.Get(pid)
	if err != nil {
		return ErrNoSuchRow
	}
	d := p.Data()
	if d[0] != heapPageType || !h.slotUsed(d, slot) {
		p.Release()
		return ErrNoSuchRow
	}
	decodeRow(dst, h.rowAt(d, slot))
	p.BeginWrite()
	h.setSlot(d, slot, false)
	setPageCount(d, pageCount(d)-1)
	p.Release()
	h.rowCount--
	h.chk ^= RowChecksum(dst, rid)
	h.freeHint = pid
	return h.writeHeader()
}

// scan calls fn for every live row. The row slice is reused between calls.
func (h *heap) scan(fn func(rid RowID, row []int64) (bool, error)) error {
	row := make([]int64, h.ncols)
	pid := h.firstPage
	// Copy each page out before invoking fn so callers may mutate the heap
	// for rows other than the one in hand (not during the same scan page).
	buf := make([]byte, h.st.PageSize())
	for pid != pagestore.InvalidPage {
		p, err := h.st.Get(pid)
		if err != nil {
			return err
		}
		copy(buf, p.Data())
		p.Release()
		for slot := 0; slot < h.slots; slot++ {
			if !h.slotUsed(buf, slot) {
				continue
			}
			decodeRow(row, h.rowAt(buf, slot))
			cont, err := fn(makeRowID(uint32(pid), slot), row)
			if err != nil {
				return err
			}
			if !cont {
				return nil
			}
		}
		pid = pageNext(buf)
	}
	return nil
}

// drop frees every heap page and the header.
func (h *heap) drop() error {
	pid := h.firstPage
	for pid != pagestore.InvalidPage {
		p, err := h.st.Get(pid)
		if err != nil {
			return err
		}
		next := pageNext(p.Data())
		p.Release()
		if err := h.st.Free(pid); err != nil {
			return err
		}
		pid = next
	}
	return h.st.Free(h.header)
}
