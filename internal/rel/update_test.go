package rel

import (
	"errors"
	"math/rand"
	"testing"
)

func TestUpdateInPlace(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a", "b"})
	rid, _ := tab.Insert([]int64{1, 2})
	if err := tab.Update(rid, []int64{10, 20}); err != nil {
		t.Fatal(err)
	}
	row, _ := tab.Get(rid)
	if row[0] != 10 || row[1] != 20 {
		t.Fatalf("row = %v", row)
	}
	if err := tab.Update(rid, []int64{1}); !errors.Is(err, ErrRowWidth) {
		t.Fatalf("width err = %v", err)
	}
	if err := tab.Update(RowID(1<<30), []int64{1, 2}); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("missing row err = %v", err)
	}
}

func TestUpdateMaintainsIndexes(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"k", "v"})
	ix, _ := db.CreateIndex("ik", "t", []string{"k"})
	rid, _ := tab.Insert([]int64{5, 50})
	if err := tab.Update(rid, []int64{7, 70}); err != nil {
		t.Fatal(err)
	}
	n, _ := ix.CountRange([]int64{5}, []int64{5})
	if n != 0 {
		t.Fatalf("old key still indexed (%d)", n)
	}
	n, _ = ix.CountRange([]int64{7}, []int64{7})
	if n != 1 {
		t.Fatalf("new key not indexed (%d)", n)
	}
}

func TestUpdateRandomizedAgainstModel(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"k", "v"})
	ix, _ := db.CreateIndex("ik", "t", []string{"k", "v"})
	rng := rand.New(rand.NewSource(8))
	model := map[RowID][2]int64{}
	var rids []RowID
	for i := 0; i < 500; i++ {
		r := [2]int64{rng.Int63n(40), rng.Int63n(1000)}
		rid, _ := tab.Insert(r[:])
		model[rid] = r
		rids = append(rids, rid)
	}
	for i := 0; i < 2000; i++ {
		rid := rids[rng.Intn(len(rids))]
		r := [2]int64{rng.Int63n(40), rng.Int63n(1000)}
		if err := tab.Update(rid, r[:]); err != nil {
			t.Fatal(err)
		}
		model[rid] = r
	}
	if ix.Len() != int64(len(model)) {
		t.Fatalf("index len %d, model %d", ix.Len(), len(model))
	}
	err := ix.Scan(nil, nil, func(key []int64, rid RowID) bool {
		want := model[rid]
		if key[0] != want[0] || key[1] != want[1] {
			t.Fatalf("index entry %v for %v, model %v", key, rid, want)
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetRawMatchesGet(t *testing.T) {
	db := newTestDB(t)
	tab, _ := db.CreateTable("t", []string{"a"})
	rid, _ := tab.Insert([]int64{42})
	a, err := tab.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab.GetRaw(rid)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatalf("Get %v vs GetRaw %v", a, b)
	}
	if _, err := tab.GetRaw(RowID(1 << 30)); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("GetRaw missing = %v", err)
	}
}

func TestCompareTuples(t *testing.T) {
	cases := []struct {
		a, b []int64
		want int
	}{
		{[]int64{1, 2}, []int64{1, 2}, 0},
		{[]int64{1, 2}, []int64{1, 3}, -1},
		{[]int64{2}, []int64{1, 9}, 1},
		{[]int64{1}, []int64{1, 0}, -1},
		{nil, nil, 0},
		{nil, []int64{0}, -1},
	}
	for _, c := range cases {
		if got := CompareTuples(c.a, c.b); got != c.want {
			t.Errorf("CompareTuples(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRowIDString(t *testing.T) {
	rid := makeRowID(7, 3)
	if rid.String() != "7:3" {
		t.Fatalf("String = %q", rid.String())
	}
}
