package rel

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sort"

	"ritree/internal/btree"
	"ritree/internal/pagestore"
)

// The catalog is serialized as JSON and stored in a chain of catalog pages
// rooted at db.catRoot. Catalog page layout:
//
//	offset 0:  type byte (catPageType)
//	offset 4:  next page id (uint32)
//	offset 8:  payload byte count in this page (uint32)
//	offset 16: payload
const (
	catPageType   = byte(4)
	catHeaderSize = 16
)

type catTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Header  uint32   `json:"header"`
}

type catIndex struct {
	Name    string   `json:"name"`
	Table   string   `json:"table"`
	Columns []string `json:"columns"`
	Meta    uint32   `json:"meta"`
}

type catCustomIndex struct {
	Name      string   `json:"name"`
	IndexType string   `json:"indextype"`
	Table     string   `json:"table"`
	Columns   []string `json:"columns"`
	// Params persists the indextype parameters (omitempty keeps catalogs
	// without them byte-identical to the earlier format).
	Params map[string]string `json:"params,omitempty"`
}

type catBlob struct {
	Name string `json:"name"`
	Root uint32 `json:"root"`
}

type catalogData struct {
	Tables  []catTable `json:"tables"`
	Indexes []catIndex `json:"indexes"`
	// CustomIndexes persists user-defined domain-index definitions (§5).
	// omitempty keeps catalogs without custom indexes byte-identical to the
	// pre-customindex format, and unmarshalling a catalog written before
	// this field existed simply yields none — both directions stay
	// compatible.
	CustomIndexes []catCustomIndex `json:"custom_indexes,omitempty"`
	// Blobs persists named blob chain roots (index snapshots). Same
	// omitempty compatibility contract as CustomIndexes.
	Blobs []catBlob `json:"blobs,omitempty"`
}

func (db *DB) saveCatalog() error {
	var data catalogData
	for _, t := range db.tables {
		data.Tables = append(data.Tables, catTable{
			Name:    t.name,
			Columns: t.schema.Columns,
			Header:  uint32(t.h.header),
		})
	}
	for _, ix := range db.indexes {
		t := db.tables[ix.table]
		cols := make([]string, len(ix.cols))
		for i, p := range ix.cols {
			cols[i] = t.schema.Columns[p]
		}
		data.Indexes = append(data.Indexes, catIndex{
			Name:    ix.name,
			Table:   ix.table,
			Columns: cols,
			Meta:    uint32(ix.tree.Meta()),
		})
	}
	for _, def := range db.customIx {
		data.CustomIndexes = append(data.CustomIndexes, catCustomIndex{
			Name:      def.Name,
			IndexType: def.IndexType,
			Table:     def.Table,
			Columns:   def.Columns,
			Params:    def.Params,
		})
	}
	sort.Slice(data.CustomIndexes, func(i, j int) bool {
		return data.CustomIndexes[i].Name < data.CustomIndexes[j].Name
	})
	for name, root := range db.blobs {
		data.Blobs = append(data.Blobs, catBlob{Name: name, Root: uint32(root)})
	}
	sort.Slice(data.Blobs, func(i, j int) bool {
		return data.Blobs[i].Name < data.Blobs[j].Name
	})
	payload, err := json.Marshal(&data)
	if err != nil {
		return err
	}

	chunk := db.st.PageSize() - catHeaderSize
	pid := db.catRoot
	prev := pagestore.InvalidPage
	var freeFrom pagestore.PageID
	for len(payload) > 0 || pid == db.catRoot {
		if pid == pagestore.InvalidPage {
			pid, err = db.st.Allocate()
			if err != nil {
				return err
			}
			// Link from the previous page.
			pp, err := db.st.GetMut(prev)
			if err != nil {
				return err
			}
			setCatNext(pp.Data(), pid)
			pp.Release()
		}
		p, err := db.st.GetMut(pid)
		if err != nil {
			return err
		}
		d := p.Data()
		next := catNext(d)
		d[0] = catPageType
		n := len(payload)
		if n > chunk {
			n = chunk
		}
		binary.LittleEndian.PutUint32(d[8:12], uint32(n))
		copy(d[catHeaderSize:], payload[:n])
		payload = payload[n:]
		if len(payload) == 0 {
			setCatNext(d, pagestore.InvalidPage)
			freeFrom = next
		}
		p.Release()
		prev = pid
		pid = next
		if len(payload) == 0 {
			break
		}
	}
	// Free any leftover pages from a previously longer catalog.
	for freeFrom != pagestore.InvalidPage {
		p, err := db.st.Get(freeFrom)
		if err != nil {
			return err
		}
		next := catNext(p.Data())
		p.Release()
		if err := db.st.Free(freeFrom); err != nil {
			return err
		}
		freeFrom = next
	}
	return nil
}

func catNext(d []byte) pagestore.PageID {
	return pagestore.PageID(binary.LittleEndian.Uint32(d[4:8]))
}
func setCatNext(d []byte, id pagestore.PageID) {
	binary.LittleEndian.PutUint32(d[4:8], uint32(id))
}

func (db *DB) loadCatalog() error {
	var payload []byte
	pid := db.catRoot
	for pid != pagestore.InvalidPage {
		p, err := db.st.Get(pid)
		if err != nil {
			return err
		}
		d := p.Data()
		if d[0] != catPageType {
			p.Release()
			return fmt.Errorf("rel: page %d is not a catalog page", pid)
		}
		n := int(binary.LittleEndian.Uint32(d[8:12]))
		if n > db.st.PageSize()-catHeaderSize {
			p.Release()
			return fmt.Errorf("rel: corrupt catalog page %d", pid)
		}
		payload = append(payload, d[catHeaderSize:catHeaderSize+n]...)
		pid = catNext(d)
		p.Release()
	}
	var data catalogData
	if err := json.Unmarshal(payload, &data); err != nil {
		return fmt.Errorf("rel: catalog decode: %w", err)
	}
	for _, ct := range data.Tables {
		schema := Schema{Columns: ct.Columns}
		h, err := openHeap(db.st, pagestore.PageID(ct.Header), schema.NumCols())
		if err != nil {
			return err
		}
		db.tables[ct.Name] = &Table{db: db, name: ct.Name, schema: schema, h: h}
	}
	for _, ci := range data.Indexes {
		t, ok := db.tables[ci.Table]
		if !ok {
			return fmt.Errorf("rel: catalog index %s references missing table %s", ci.Name, ci.Table)
		}
		cols := make([]int, len(ci.Columns))
		for i, c := range ci.Columns {
			p := t.schema.ColIndex(c)
			if p < 0 {
				return fmt.Errorf("rel: catalog index %s references missing column %s", ci.Name, c)
			}
			cols[i] = p
		}
		tree, err := btree.Open(db.st, pagestore.PageID(ci.Meta))
		if err != nil {
			return err
		}
		ix := &Index{name: ci.Name, table: ci.Table, cols: cols, tree: tree}
		t.indexes = append(t.indexes, ix)
		db.indexes[ci.Name] = ix
	}
	for _, cc := range data.CustomIndexes {
		if _, ok := db.tables[cc.Table]; !ok {
			return fmt.Errorf("rel: catalog custom index %s references missing table %s", cc.Name, cc.Table)
		}
		db.customIx[cc.Name] = CustomIndexDef{
			Name:      cc.Name,
			IndexType: cc.IndexType,
			Table:     cc.Table,
			Columns:   cc.Columns,
			Params:    cc.Params,
		}
	}
	for _, b := range data.Blobs {
		db.blobs[b.Name] = pagestore.PageID(b.Root)
	}
	return nil
}

// BulkLoadIndex rebuilds the named index from its table's rows using the
// B+-tree bulk loader; the existing index contents are discarded. This gives
// the "good clustering properties of the bulk loaded indexes" the paper
// observes (§6.3) and is dramatically faster than row-at-a-time insertion
// when creating a large index after loading a table.
func (db *DB) BulkLoadIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	ix, ok := db.indexes[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchIndex, name)
	}
	t := db.tables[ix.table]
	keys := newFlatTuples(len(ix.cols)+1, int(t.h.rowCount))
	err := t.h.scan(func(rid RowID, row []int64) (bool, error) {
		keys.appendTuple(ix.keyFor(row, rid))
		return true, nil
	})
	if err != nil {
		return err
	}
	keys.sort()
	if err := ix.tree.Drop(); err != nil {
		return err
	}
	tree, err := btree.Create(db.st, len(ix.cols)+1)
	if err != nil {
		return err
	}
	if err := tree.BulkLoad(keys.next()); err != nil {
		return err
	}
	ix.tree = tree
	return db.saveCatalog()
}
