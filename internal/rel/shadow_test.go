package rel

import (
	"testing"

	"ritree/internal/pagestore"
)

// TestShadowDBOverSnapshot proves the snapshot-as-backend technique the SQL
// layer relies on: a rel.DB opened over a pagestore snapshot serves a
// consistent as-of-commit view (tables, indexes, checksums) while the live
// database keeps committing.
func TestShadowDBOverSnapshot(t *testing.T) {
	st, err := pagestore.New(pagestore.NewMemBackend(),
		pagestore.Options{PageSize: 4096, CacheSize: 256, WAL: pagestore.NewMemWAL()})
	if err != nil {
		t.Fatal(err)
	}
	db, err := CreateDB(st)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := db.CreateTable("iv", []string{"lower", "upper"})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		if _, err := tab.Insert([]int64{i, i + 10}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.CreateIndex("iv_lower", "iv", []string{"lower"}); err != nil {
		t.Fatal(err)
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}
	wantChk := tab.ContentChecksum()

	snap, err := st.AcquireSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Release()

	// Mutate the live database after the snapshot.
	for i := int64(500); i < 600; i++ {
		if _, err := tab.Insert([]int64{i, i + 10}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Commit(); err != nil {
		t.Fatal(err)
	}

	// Shadow store over the snapshot; read-only, never flushed or closed.
	shadowStore, err := pagestore.New(snap, pagestore.Options{PageSize: 4096, CacheSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := OpenDB(shadowStore, db.CatalogRoot())
	if err != nil {
		t.Fatal(err)
	}
	stab, err := sdb.Table("iv")
	if err != nil {
		t.Fatal(err)
	}
	if got := stab.RowCount(); got != 200 {
		t.Fatalf("shadow RowCount = %d, want 200 (as of snapshot)", got)
	}
	if got := stab.ContentChecksum(); got != wantChk {
		t.Fatalf("shadow checksum = %#x, want %#x", got, wantChk)
	}
	if got := tab.RowCount(); got != 300 {
		t.Fatalf("live RowCount = %d, want 300", got)
	}
	// The secondary index inside the shadow view scans consistently.
	six, err := sdb.Index("iv_lower")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	err = six.Scan(nil, nil, func(key []int64, rid RowID) bool {
		n++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("shadow index scan saw %d entries, want 200", n)
	}
}
