package rel

// Content checksums — the ROADMAP follow-up to the PR-2 row-count
// staleness check. Every heap maintains an order-independent checksum of
// its live rows: the XOR of RowChecksum(row, rid) over them, updated
// incrementally on insert, delete and update and persisted in the table
// header page (the same page the row count already lives on, so the
// maintenance is free). A domain index that mirrors the same XOR over
// the rows it was maintained with can then detect divergence that nets
// to zero rows — insert-then-delete DML run while the index was not
// attached — which the count comparison provably cannot.

// RowChecksum hashes one row and its rid into the table-content
// checksum contribution. XOR-aggregating it over rows is
// order-independent and self-inverse, so inserts and deletes apply the
// same operation. The per-field splitmix64 finalizer keeps near-equal
// rows from cancelling structurally.
func RowChecksum(row []int64, rid RowID) uint64 {
	h := mix64(uint64(rid) ^ 0x9e3779b97f4a7c15)
	for _, v := range row {
		h = mix64(h ^ mix64(uint64(v)))
	}
	return h
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
