package rel

import (
	"encoding/binary"
	"fmt"
	"sort"

	"ritree/internal/pagestore"
)

// Named blobs are uninterpreted byte strings stored in the database file
// alongside tables and indexes. Each blob lives in a chain of blob pages
// (same layout as catalog pages, distinct type byte) whose root is
// recorded in the catalog, so blobs ride the store's WAL, snapshot, and
// checkpoint machinery like every other relation. The SQL layer uses them
// to persist index snapshots; a torn or half-written blob is detected by
// the reader's own framing (page type + length checks here, checksums in
// the payload format above).
//
// Blob page layout:
//
//	offset 0:  type byte (blobPageType)
//	offset 4:  next page id (uint32)
//	offset 8:  payload byte count in this page (uint32)
//	offset 12: total chain payload bytes (uint32, root page only; a
//	           preallocation hint — 0 on chains written before it existed)
//	offset 16: payload
const (
	blobPageType   = byte(5)
	blobHeaderSize = 16
)

// PutBlob stores data under name, replacing any previous contents, and
// persists the catalog. An empty payload is a valid blob.
func (db *DB) PutBlob(name string, data []byte) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if name == "" {
		return fmt.Errorf("rel: empty blob name")
	}
	root, err := db.writeChain(db.blobs[name], blobPageType, data)
	if err != nil {
		return err
	}
	db.blobs[name] = root
	return db.saveCatalog()
}

// GetBlob returns the contents of the named blob. found is false when no
// blob of that name exists; a structurally damaged chain returns an error.
func (db *DB) GetBlob(name string) (data []byte, found bool, err error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	root, ok := db.blobs[name]
	if !ok {
		return nil, false, nil
	}
	data, err = db.readChain(root, blobPageType)
	if err != nil {
		return nil, true, err
	}
	return data, true, nil
}

// DeleteBlob removes the named blob and frees its pages. Deleting a blob
// that does not exist is a no-op.
func (db *DB) DeleteBlob(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	root, ok := db.blobs[name]
	if !ok {
		return nil
	}
	if err := db.freeChain(root); err != nil {
		return err
	}
	delete(db.blobs, name)
	return db.saveCatalog()
}

// BlobNames returns the names of all stored blobs, sorted.
func (db *DB) BlobNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.blobs))
	for n := range db.blobs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// writeChain writes payload into the page chain rooted at root (InvalidPage
// for a fresh chain), allocating pages as the payload grows and freeing
// leftovers as it shrinks, and returns the chain root. The chain always has
// at least one page so the root stays stable across rewrites.
func (db *DB) writeChain(root pagestore.PageID, ptype byte, payload []byte) (pagestore.PageID, error) {
	chunk := db.st.PageSize() - blobHeaderSize
	if root == pagestore.InvalidPage {
		var err error
		root, err = db.st.Allocate()
		if err != nil {
			return pagestore.InvalidPage, err
		}
	}
	totalLen := len(payload)
	pid := root
	prev := pagestore.InvalidPage
	freeFrom := pagestore.InvalidPage
	for len(payload) > 0 || pid == root {
		if pid == pagestore.InvalidPage {
			var err error
			pid, err = db.st.Allocate()
			if err != nil {
				return pagestore.InvalidPage, err
			}
			pp, err := db.st.GetMut(prev)
			if err != nil {
				return pagestore.InvalidPage, err
			}
			setCatNext(pp.Data(), pid)
			pp.Release()
		}
		p, err := db.st.GetMut(pid)
		if err != nil {
			return pagestore.InvalidPage, err
		}
		d := p.Data()
		// Freshly allocated pages are zeroed, so next reads InvalidPage on
		// them and walks the previous chain tail on rewrites.
		next := catNext(d)
		d[0] = ptype
		if pid == root {
			binary.LittleEndian.PutUint32(d[12:16], uint32(totalLen))
		}
		n := len(payload)
		if n > chunk {
			n = chunk
		}
		binary.LittleEndian.PutUint32(d[8:12], uint32(n))
		copy(d[blobHeaderSize:], payload[:n])
		payload = payload[n:]
		if len(payload) == 0 {
			setCatNext(d, pagestore.InvalidPage)
			freeFrom = next
		}
		p.Release()
		prev = pid
		pid = next
		if len(payload) == 0 {
			break
		}
	}
	for freeFrom != pagestore.InvalidPage {
		p, err := db.st.Get(freeFrom)
		if err != nil {
			return pagestore.InvalidPage, err
		}
		next := catNext(p.Data())
		p.Release()
		if err := db.st.Free(freeFrom); err != nil {
			return pagestore.InvalidPage, err
		}
		freeFrom = next
	}
	return root, nil
}

// readChain concatenates the payload of the chain rooted at root, checking
// the page type and per-page length framing. Chains are read through the
// store's cache-bypassing path: a multi-megabyte blob (an index snapshot,
// say) would otherwise sweep the entire buffer cache on open, and the
// chain's pages are never re-read after this one pass anyway. Pages are
// fetched in speculative batches of consecutive ids — writeChain allocates
// chains in order, so the guess almost always holds and a big blob costs a
// few ranged I/Os; whenever the next pointer leaves the batch, the rest of
// the batch is discarded and reading restarts at the actual page, so a
// fragmented chain is merely slower, never misread. The root page's
// total-length field preallocates the result; it is only a hint, so a
// stale or zero value costs reallocation, never correctness.
func (db *DB) readChain(root pagestore.PageID, ptype byte) ([]byte, error) {
	const batchPages = 64
	ps := db.st.PageSize()
	bound := db.st.PageBound()
	scratch := make([]byte, batchPages*ps)
	var payload []byte
	var base pagestore.PageID
	var have, idx int // scratch holds pages base .. base+have-1; idx is next
	pid := root
	for pid != pagestore.InvalidPage {
		if idx >= have || pid != base+pagestore.PageID(idx) {
			k := batchPages
			if pid < bound && int(bound-pid) < k {
				k = int(bound - pid)
			}
			if k < 1 {
				k = 1 // out-of-range id: a single-page read reports it
			}
			if err := db.st.ReadPagesInto(pid, scratch[:k*ps]); err != nil {
				return nil, err
			}
			base, have, idx = pid, k, 0
		}
		d := scratch[idx*ps : (idx+1)*ps]
		idx++
		if d[0] != ptype {
			return nil, fmt.Errorf("rel: page %d is not a blob page", pid)
		}
		n := int(binary.LittleEndian.Uint32(d[8:12]))
		if n > ps-blobHeaderSize {
			return nil, fmt.Errorf("rel: corrupt blob page %d", pid)
		}
		if pid == root {
			if hint := int(binary.LittleEndian.Uint32(d[12:16])); hint > 0 && hint <= 1<<30 {
				payload = make([]byte, 0, hint)
			}
		}
		payload = append(payload, d[blobHeaderSize:blobHeaderSize+n]...)
		pid = catNext(d)
	}
	return payload, nil
}

// freeChain releases every page of the chain rooted at root.
func (db *DB) freeChain(root pagestore.PageID) error {
	for root != pagestore.InvalidPage {
		p, err := db.st.Get(root)
		if err != nil {
			return err
		}
		next := catNext(p.Data())
		p.Release()
		if err := db.st.Free(root); err != nil {
			return err
		}
		root = next
	}
	return nil
}
