// Package rel implements the relational storage layer of the reproduction:
// heap tables of fixed-width int64 rows, secondary B+-tree indexes on column
// prefixes, and a persistent catalog.
//
// The RI-tree paper's premise is that an interval index can be built from
// nothing but "a given interval relation ... prepared for the RI-tree by
// adding a single attribute node and two indexes" (§3.2, Figure 2). This
// package provides those relations and indexes. Columns are int64 — the
// paper's schema (node, lower, upper, id) is all-integer.
package rel

import (
	"errors"
	"fmt"
)

// MaxColumns is the largest number of columns in a table.
const MaxColumns = 32

var (
	// ErrNoSuchTable is returned when a named table does not exist.
	ErrNoSuchTable = errors.New("rel: no such table")
	// ErrNoSuchIndex is returned when a named index does not exist.
	ErrNoSuchIndex = errors.New("rel: no such index")
	// ErrExists is returned when creating an object whose name is taken.
	ErrExists = errors.New("rel: object already exists")
	// ErrNoSuchColumn is returned when a named column does not exist.
	ErrNoSuchColumn = errors.New("rel: no such column")
	// ErrRowWidth is returned when a row has the wrong number of columns.
	ErrRowWidth = errors.New("rel: row has wrong number of columns")
	// ErrNoSuchRow is returned by Get for an invalid row id.
	ErrNoSuchRow = errors.New("rel: no such row")
)

// Schema describes a table's columns. All columns are 64-bit integers.
type Schema struct {
	Columns []string
}

// NumCols returns the number of columns.
func (s Schema) NumCols() int { return len(s.Columns) }

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s.Columns {
		if c == name {
			return i
		}
	}
	return -1
}

func (s Schema) validate() error {
	if len(s.Columns) == 0 || len(s.Columns) > MaxColumns {
		return fmt.Errorf("rel: schema must have 1..%d columns, has %d", MaxColumns, len(s.Columns))
	}
	seen := map[string]bool{}
	for _, c := range s.Columns {
		if c == "" {
			return errors.New("rel: empty column name")
		}
		if seen[c] {
			return fmt.Errorf("rel: duplicate column %q", c)
		}
		seen[c] = true
	}
	return nil
}

// RowID identifies a row within a table: the heap page id in the upper bits
// and the slot number in the lower 16.
type RowID int64

func makeRowID(page uint32, slot int) RowID {
	return RowID(int64(page)<<16 | int64(slot))
}

func (r RowID) page() uint32 { return uint32(r >> 16) }
func (r RowID) slot() int    { return int(r & 0xffff) }

// String formats the row id as page:slot.
func (r RowID) String() string { return fmt.Sprintf("%d:%d", r.page(), r.slot()) }
