package rel

import (
	"ritree/internal/btree"
)

// Index is a secondary composite index over a prefix of a table's columns.
// Entries are (col_1, ..., col_k, rowid) tuples in a B+-tree, making every
// entry unique — exactly how the paper's composite indexes (node, lower) and
// (node, upper) are organized, with key compression replaced by shared-page
// locality.
type Index struct {
	name  string
	table string
	cols  []int // positions of indexed columns in the table schema
	tree  *btree.Tree
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// TableName returns the indexed table's name.
func (ix *Index) TableName() string { return ix.table }

// Cols returns the positions of the indexed columns in the table schema.
func (ix *Index) Cols() []int { return append([]int(nil), ix.cols...) }

// Len returns the number of entries (equals the table's live row count).
func (ix *Index) Len() int64 { return ix.tree.Len() }

// Height returns the underlying B+-tree height.
func (ix *Index) Height() int { return ix.tree.Height() }

func (ix *Index) keyFor(row []int64, rid RowID) []int64 {
	key := make([]int64, len(ix.cols)+1)
	for i, c := range ix.cols {
		key[i] = row[c]
	}
	key[len(ix.cols)] = int64(rid)
	return key
}

func (ix *Index) insertEntry(row []int64, rid RowID) error {
	_, err := ix.tree.Insert(ix.keyFor(row, rid))
	return err
}

func (ix *Index) deleteEntry(row []int64, rid RowID) error {
	_, err := ix.tree.Delete(ix.keyFor(row, rid))
	return err
}

// Scan visits index entries with low <= key <= high, where low and high
// cover at most the indexed columns (shorter bounds are padded with
// -inf/+inf; the rowid column is unbounded). fn receives the indexed column
// values and the rowid; return false to stop.
func (ix *Index) Scan(low, high []int64, fn func(key []int64, rid RowID) bool) error {
	if len(low) > len(ix.cols) || len(high) > len(ix.cols) {
		return ErrRowWidth
	}
	lo := btree.PadKey(low, len(ix.cols)+1, false)
	hi := btree.PadKey(high, len(ix.cols)+1, true)
	return ix.tree.Scan(lo, hi, func(key []int64) bool {
		return fn(key[:len(ix.cols)], RowID(key[len(ix.cols)]))
	})
}

// CountRange returns the number of entries with low <= key <= high.
func (ix *Index) CountRange(low, high []int64) (int64, error) {
	var n int64
	err := ix.Scan(low, high, func([]int64, RowID) bool { n++; return true })
	return n, err
}
