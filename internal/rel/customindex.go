package rel

import (
	"fmt"
	"sort"
	"strings"
)

// Custom (domain) index definitions — the catalog side of the extensible
// indexing framework of paper §5. The storage of a user-defined indextype
// (e.g. the RI-tree's hidden relations) lives in ordinary tables and
// indexes that the catalog already persists; what used to be lost across
// sessions was the definition itself: which indextype serves which index
// name over which table columns. Recording the definition here lets a new
// session re-attach every domain index instead of silently serving DML
// without index maintenance (which would leave the persisted index stale
// and later queries wrong).

// CustomIndexDef describes one user-defined domain index: the index name,
// the indextype implementing it, the base table columns it indexes, and
// the indextype parameters it was created with (nil when none). Params
// round-trip through the catalog so a later session re-attaches the
// index with the same configuration.
type CustomIndexDef struct {
	Name      string
	IndexType string
	Table     string
	Columns   []string
	Params    map[string]string
}

// cloneParams copies a parameter map (nil stays nil).
func cloneParams(p map[string]string) map[string]string {
	if p == nil {
		return nil
	}
	out := make(map[string]string, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// RecordCustomIndex persists a domain-index definition in the catalog.
// The name shares one namespace with built-in indexes: recording a name
// that is already a built-in or custom index fails with ErrExists.
func (db *DB) RecordCustomIndex(def CustomIndexDef) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if def.Name == "" {
		return fmt.Errorf("rel: empty custom index name")
	}
	if def.IndexType == "" {
		return fmt.Errorf("rel: custom index %s has no indextype", def.Name)
	}
	// Name checks are case-insensitive: the SQL layer folds identifiers to
	// lower case, embedding callers may not, and two definitions differing
	// only in case would collide in the engine's lower-cased registration
	// maps (the second would silently never attach on reopen).
	for n := range db.indexes {
		if strings.EqualFold(n, def.Name) {
			return fmt.Errorf("%w: index %s", ErrExists, n)
		}
	}
	if _, ok := db.customIndexNamed(def.Name); ok {
		return fmt.Errorf("%w: index %s", ErrExists, def.Name)
	}
	t, ok := db.tables[def.Table]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchTable, def.Table)
	}
	if len(def.Columns) == 0 {
		return fmt.Errorf("rel: custom index %s has no columns", def.Name)
	}
	for _, c := range def.Columns {
		if t.schema.ColIndex(c) < 0 {
			return fmt.Errorf("%w: %s.%s", ErrNoSuchColumn, def.Table, c)
		}
	}
	def.Columns = append([]string(nil), def.Columns...)
	def.Params = cloneParams(def.Params)
	db.customIx[def.Name] = def
	if err := db.saveCatalog(); err != nil {
		delete(db.customIx, def.Name)
		return err
	}
	return nil
}

// RemoveCustomIndex deletes a domain-index definition from the catalog
// (name matched case-insensitively, like CustomIndex).
func (db *DB) RemoveCustomIndex(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	def, ok := db.customIndexNamed(name)
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchIndex, name)
	}
	delete(db.customIx, def.Name)
	if err := db.saveCatalog(); err != nil {
		db.customIx[def.Name] = def
		return err
	}
	return nil
}

// CustomIndexes returns all persisted domain-index definitions, sorted by
// name. A session over a reopened database walks this list to re-attach
// every domain index (sqldb.Engine.AttachCatalogIndexes).
func (db *DB) CustomIndexes() []CustomIndexDef {
	db.mu.RLock()
	defer db.mu.RUnlock()
	defs := make([]CustomIndexDef, 0, len(db.customIx))
	for _, def := range db.customIx {
		def.Columns = append([]string(nil), def.Columns...)
		def.Params = cloneParams(def.Params)
		defs = append(defs, def)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	return defs
}

// CustomIndex returns the persisted definition of the named domain index.
// The lookup is case-insensitive, like the namespace: the SQL layer folds
// identifiers to lower case, so DROP INDEX on a mixed-case definition
// recorded by an embedding caller must still resolve it.
func (db *DB) CustomIndex(name string) (CustomIndexDef, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	def, ok := db.customIndexNamed(name)
	if ok {
		def.Columns = append([]string(nil), def.Columns...)
		def.Params = cloneParams(def.Params)
	}
	return def, ok
}

// customIndexNamed finds the stored definition whose name matches
// case-insensitively. Caller holds db.mu.
func (db *DB) customIndexNamed(name string) (CustomIndexDef, bool) {
	for n, def := range db.customIx {
		if strings.EqualFold(n, name) {
			return def, true
		}
	}
	return CustomIndexDef{}, false
}
