// Package obs is the unified observability substrate of the engine: a
// lock-cheap metrics registry (atomic counters, gauges, and bounded
// log2-bucket latency histograms) plus a context-carried tracer with
// span start/finish hooks.
//
// The design goals, in order:
//
//  1. Hot-path cost: recording a metric is one or two uncontended atomic
//     adds — cheap enough to leave enabled on the query path (the
//     acceptance bar is <= 5% on a LIMIT-10 cursor benchmark).
//  2. Race-freedom: every metric may be written and snapshotted from any
//     number of goroutines concurrently; the whole package is exercised
//     under -race.
//  3. Zero dependencies: the registry doubles as an expvar.Var and the
//     HTTP surface (Handler) serves it with net/http + net/http/pprof
//     only, so cmd/ tools and a future network server can expose the
//     same numbers without pulling anything in.
//
// Each ritree.DB owns one Registry; the layers underneath (pagestore,
// hint, ritree, sqldb) publish per-DB metric families into it under
// dotted names ("pagestore.logical_reads", "sql.leaf_rows",
// "index.iv_iv.shard_scans"). Registry.Counter et al. are get-or-create,
// so independent layers may share a family without coordination.
package obs

import (
	"encoding/json"
	"expvar"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter (Reset exists for
// benchmark harnesses; long-lived registries should treat counters as
// monotonic). The zero value is ready to use, so structs can embed
// counters without construction.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric accessors are get-or-create, so any layer can
// resolve a family by name without registration ceremony. A Registry is
// an expvar.Var (String renders the full snapshot as JSON), so
// expvar.Publish("ritree", reg) exposes it on /debug/vars.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry. Values
// of different metrics are read without a global pause, so counters
// incremented together by one operation may differ by in-flight
// operations — each individual value is a consistent atomic load.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Sub returns a snapshot holding the counter-wise difference s - o;
// gauges keep s's values and histograms are dropped (they do not
// subtract meaningfully bucket-wise once summarized).
func (s Snapshot) Sub(o Snapshot) Snapshot {
	d := Snapshot{Counters: make(map[string]int64, len(s.Counters)), Gauges: s.Gauges}
	for name, v := range s.Counters {
		d.Counters[name] = v - o.Counters[name]
	}
	return d
}

// CounterNames returns the counter names of the snapshot, sorted.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// String implements expvar.Var: the full snapshot as JSON.
func (r *Registry) String() string {
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

var _ expvar.Var = (*Registry)(nil)

// Publish registers r under name on the process-wide expvar page
// (/debug/vars). Unlike expvar.Publish it is idempotent per name: a
// second call for an already published name is a no-op rather than a
// panic, so tests and tools can publish freely.
func Publish(name string, r *Registry) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, r)
}
