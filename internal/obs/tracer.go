package obs

import (
	"context"
	"time"
)

// Span is one traced operation in flight.
type Span struct {
	tr    *Tracer
	name  string
	start time.Time
}

// Finish closes the span: it records the elapsed wall time into the
// tracer's per-name latency histogram and invokes the finish hook. Safe
// on a nil or zero span (the no-op Tracer path costs one nil check).
func (s *Span) Finish() {
	if s == nil || s.tr == nil {
		return
	}
	d := time.Since(s.start)
	if s.tr.reg != nil {
		s.tr.reg.Histogram("trace." + s.name).Record(d.Nanoseconds())
	}
	if s.tr.OnFinish != nil {
		s.tr.OnFinish(s.name, s.start, d)
	}
}

// Tracer records named spans into a registry's "trace.<name>" histogram
// family and exposes optional start/finish hooks for callers that want
// live events (a future riserver's request log, test assertions). A nil
// *Tracer is valid and free: Start returns a nil span whose Finish is a
// no-op, so instrumented code needs no conditionals.
type Tracer struct {
	reg *Registry
	// OnStart, when set, observes every span start.
	OnStart func(name string, start time.Time)
	// OnFinish, when set, observes every span finish with its duration.
	OnFinish func(name string, start time.Time, d time.Duration)
}

// NewTracer returns a tracer recording span latencies into reg (which
// may be nil when only the hooks are wanted).
func NewTracer(reg *Registry) *Tracer { return &Tracer{reg: reg} }

// Start opens a span. The returned span must be Finished exactly once;
// it is not reused.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, name: name, start: time.Now()}
	if t.OnStart != nil {
		t.OnStart(name, s.start)
	}
	return s
}

// tracerKey is the context key carrying a *Tracer.
type tracerKey struct{}

// WithTracer returns a context carrying t.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFrom extracts the tracer carried by ctx, or nil — callers use
// the result directly since a nil Tracer is a valid no-op tracer.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey{}).(*Tracer)
	return t
}

// StartSpan opens a span on the context's tracer (no-op span when the
// context carries none).
func StartSpan(ctx context.Context, name string) *Span {
	return TracerFrom(ctx).Start(name)
}
