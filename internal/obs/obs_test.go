package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("a.b") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
	s := r.Snapshot()
	if s.Counter("a.b") != 5 || s.Gauges["g"] != 4 {
		t.Fatalf("snapshot mismatch: %+v", s)
	}
	if s.Counter("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("reset failed")
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Add(10)
	before := r.Snapshot()
	r.Counter("x").Add(7)
	r.Counter("y").Add(2)
	d := r.Snapshot().Sub(before)
	if d.Counter("x") != 7 || d.Counter("y") != 2 {
		t.Fatalf("sub = %+v", d.Counters)
	}
	names := d.CounterNames()
	if len(names) != 2 || names[0] != "x" || names[1] != "y" {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 100 values: 1..100. Log2 buckets give upper-bound quantiles:
	// p50 rank is 50 -> bucket of 50 (32..63) -> 63.
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 5050 || s.Max != 100 {
		t.Fatalf("count/sum/max = %d/%d/%d", s.Count, s.Sum, s.Max)
	}
	if s.P50 != 63 {
		t.Fatalf("p50 = %d, want 63", s.P50)
	}
	// p95 rank 95 and p99 rank 99 both land in bucket 64..127, whose
	// upper bound 127 is clamped to the exact max 100.
	if s.P95 != 100 || s.P99 != 100 {
		t.Fatalf("p95/p99 = %d/%d, want 100/100", s.P95, s.P99)
	}
	if s.Mean() != 50 {
		t.Fatalf("mean = %d, want 50", s.Mean())
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5) // clamped to 0
	s := h.Snapshot()
	if s.Count != 2 || s.Sum != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Fatalf("snapshot = %+v", s)
	}
	var empty Histogram
	if es := empty.Snapshot(); es.Count != 0 || es.P50 != 0 || es.Mean() != 0 {
		t.Fatalf("empty snapshot = %+v", es)
	}
}

// TestHistogramConcurrent exercises the satellite requirement: histograms
// must merge correctly under concurrent recording — recorders, mergers,
// and snapshotters all racing.
func TestHistogramConcurrent(t *testing.T) {
	const (
		workers = 8
		perW    = 10000
	)
	var parts [workers]Histogram
	var merged Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	// Concurrent snapshotter: only checks invariants, never exact values.
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := merged.Snapshot()
			if s.Count < 0 || s.P50 > s.P99 && s.Count > 0 {
				t.Errorf("inconsistent mid-flight snapshot: %+v", s)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				v := int64(w*perW + i)
				parts[w].Record(v)
				merged.Record(v)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-snapDone

	// Merge the per-worker histograms into a fresh one; it must agree
	// exactly with the directly shared histogram now that recording is
	// quiescent.
	var folded Histogram
	for w := range parts {
		folded.Merge(&parts[w])
	}
	fs, ms := folded.Snapshot(), merged.Snapshot()
	if fs != ms {
		t.Fatalf("merged snapshot %+v != direct %+v", fs, ms)
	}
	if fs.Count != workers*perW {
		t.Fatalf("count = %d, want %d", fs.Count, workers*perW)
	}
}

// TestRegistryConcurrent races get-or-create accessors, writers, and
// snapshotters; run under -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				n := names[i%len(names)]
				r.Counter(n).Inc()
				r.Gauge(n).Set(int64(i))
				r.Histogram(n).Record(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.String()
				}
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	var total int64
	for _, n := range names {
		total += s.Counter(n)
	}
	if total != 8*2000 {
		t.Fatalf("total = %d, want %d", total, 8*2000)
	}
	for _, n := range names {
		if s.Histograms[n].Count != 8*2000/int64(len(names)) {
			t.Fatalf("hist %s count = %d", n, s.Histograms[n].Count)
		}
	}
}

func TestRegistryExpvarString(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows").Add(3)
	r.Histogram("lat").Record(100)
	var s Snapshot
	if err := json.Unmarshal([]byte(r.String()), &s); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if s.Counter("rows") != 3 || s.Histograms["lat"].Count != 1 {
		t.Fatalf("decoded snapshot = %+v", s)
	}
	// Publish must be idempotent (expvar.Publish panics on duplicates).
	Publish("obs_test_registry", r)
	Publish("obs_test_registry", r)
}

func TestTracer(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r)
	var finished []string
	tr.OnFinish = func(name string, _ time.Time, d time.Duration) {
		if d < 0 {
			t.Errorf("negative duration for %s", name)
		}
		finished = append(finished, name)
	}
	ctx := WithTracer(context.Background(), tr)
	if TracerFrom(ctx) != tr {
		t.Fatal("TracerFrom lost the tracer")
	}
	sp := StartSpan(ctx, "query")
	sp.Finish()
	if len(finished) != 1 || finished[0] != "query" {
		t.Fatalf("finished = %v", finished)
	}
	if r.Snapshot().Histograms["trace.query"].Count != 1 {
		t.Fatal("span latency not recorded")
	}
	// Nil-tracer path: contexts without a tracer produce free no-op spans.
	StartSpan(context.Background(), "x").Finish()
	var nilT *Tracer
	nilT.Start("y").Finish()
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("pages").Add(9)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Counter("pages") != 9 {
		t.Fatalf("served snapshot = %+v", s)
	}
	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s -> %d", path, resp.StatusCode)
		}
	}
}

func TestBucketBounds(t *testing.T) {
	// With a single observation every quantile is clamped to the exact
	// max, regardless of the log2 bucket's upper bound.
	for _, v := range []int64{0, 1, 2, 3, 4, 1000} {
		var h Histogram
		h.Record(v)
		s := h.Snapshot()
		if s.P99 != v || s.P50 != v {
			t.Errorf("Record(%d): p50/p99 = %d/%d, want %d", v, s.P50, s.P99, v)
		}
	}
	if got := bucketUpper(2); got != 3 {
		t.Errorf("bucketUpper(2) = %d, want 3", got)
	}
	if got := bucketUpper(64); got <= 0 {
		t.Errorf("bucketUpper(64) = %d, want MaxInt64", got)
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Inc()
	b, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"counters"`) {
		t.Fatalf("json = %s", b)
	}
}
