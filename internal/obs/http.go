package obs

import (
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry and the standard Go diagnostics on one
// mux, with zero dependencies beyond net/http:
//
//	/metrics          registry snapshot as indented JSON
//	/debug/vars       the process expvar page (includes every Publish'd registry)
//	/debug/pprof/...  net/http/pprof profiles
//
// cmd/ tools and a future riserver mount it directly:
//
//	go http.ListenAndServe(addr, obs.Handler(db.Metrics()))
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
