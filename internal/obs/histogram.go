package obs

import (
	"math/bits"
	"sync/atomic"
)

// histBuckets bounds the histogram: bucket i counts values v with
// bits.Len64(v) == i, i.e. 2^(i-1) <= v < 2^i (bucket 0 counts v == 0).
// 64 buckets cover the full non-negative int64 range, so recording can
// never index out of bounds and needs no resizing or locking.
const histBuckets = 65

// Histogram is a bounded log2-bucket histogram of non-negative values
// (typically latencies in nanoseconds). Record is two atomic adds plus
// one atomic increment; Snapshot may run concurrently with recorders.
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Record adds one observation. Negative values are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Merge folds o's observations into h. Both histograms may be receiving
// concurrent Records; the merge transfers each bucket with one atomic
// load+add, so totals are exact with respect to the observations o held
// at the moment each of its fields was read.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil {
		return
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	om := o.max.Load()
	for {
		cur := h.max.Load()
		if om <= cur || h.max.CompareAndSwap(cur, om) {
			break
		}
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n != 0 {
			h.buckets[i].Add(n)
		}
	}
}

// HistogramSnapshot summarizes a histogram at one instant.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P95   int64 `json:"p95"`
	P99   int64 `json:"p99"`
}

// Mean returns the arithmetic mean of the recorded values (0 when empty).
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Snapshot summarizes the histogram. Quantiles are upper bounds of the
// log2 bucket holding the quantile rank — accurate to a factor of two,
// which is the resolution this histogram trades for lock-free recording.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{
		// Report the count implied by the buckets read above so that
		// Count always equals the population the quantiles describe,
		// even while recorders are mid-flight.
		Count: total,
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if total == 0 {
		return s
	}
	s.P50 = quantile(&counts, total, 50)
	s.P95 = quantile(&counts, total, 95)
	s.P99 = quantile(&counts, total, 99)
	if s.Max > 0 {
		// The max is exact while bucket bounds are powers of two; no
		// quantile can exceed the largest observed value.
		s.P50 = min64(s.P50, s.Max)
		s.P95 = min64(s.P95, s.Max)
		s.P99 = min64(s.P99, s.Max)
	}
	return s
}

// quantile returns the upper bound of the bucket containing the q-th
// percentile rank of the population described by counts.
func quantile(counts *[histBuckets]int64, total int64, q int64) int64 {
	rank := (total*q + 99) / 100 // ceil(total * q/100)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range counts {
		cum += counts[i]
		if cum >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(histBuckets - 1)
}

// bucketUpper is the inclusive upper bound of bucket i: 0 for bucket 0,
// else 2^i - 1.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
