// Command wireclient is a stock database/sql program speaking to a
// riserver — the acceptance proof that the wire surface needs nothing
// but the driver import. It runs DDL, bound INSERTs through a prepared
// statement, an indexed interval SELECT, an ALLEN operator, a streaming
// LIMIT query, EXPLAIN, and a BEGIN/COMMIT transaction, checking every
// result. Exit status 0 means the whole surface worked over the wire.
//
//	riserver -listen 127.0.0.1:7432 &
//	wireclient -dsn tcp://127.0.0.1:7432
//
// With -dsn mem:// the same program runs fully embedded — identical
// behavior is the point.
package main

import (
	"database/sql"
	"flag"
	"fmt"
	"log"
	"strings"

	_ "ritree/driver"
)

func main() {
	dsn := flag.String("dsn", "tcp://127.0.0.1:7432", "ritree DSN (tcp://host:port, mem:// or file://path)")
	flag.Parse()

	db, err := sql.Open("ritree", *dsn)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		log.Fatalf("ping %s: %v", *dsn, err)
	}

	must := func(q string, args ...interface{}) {
		if _, err := db.Exec(q, args...); err != nil {
			log.Fatalf("%s: %v", q, err)
		}
	}
	must("CREATE TABLE resv (room int, arrival int, departure int)")
	must("CREATE INDEX resv_iv ON resv (arrival, departure) INDEXTYPE IS ritree")

	// Bound inserts through a prepared statement: positional args map to
	// the named binds in first-appearance order.
	stmt, err := db.Prepare("INSERT INTO resv VALUES (:room, :arr, :dep)")
	if err != nil {
		log.Fatal(err)
	}
	for room := 1; room <= 50; room++ {
		if _, err := stmt.Exec(room, room*10, room*10+25); err != nil {
			log.Fatal(err)
		}
	}
	stmt.Close()

	// Indexed intersection query.
	var rooms []int64
	rows, err := db.Query(
		"SELECT room FROM resv WHERE intersects(arrival, departure, :lo, :hi) ORDER BY room", 100, 130)
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var r int64
		if err := rows.Scan(&r); err != nil {
			log.Fatal(err)
		}
		rooms = append(rooms, r)
	}
	rows.Close()
	if len(rooms) == 0 {
		log.Fatal("intersection query returned no rooms")
	}
	fmt.Printf("rooms overlapping [100, 130]: %v\n", rooms)

	// An Allen §4.5 operator over the same index.
	var during int64
	if err := db.QueryRow(
		"SELECT count(*) FROM resv WHERE allen_during(arrival, departure, :lo, :hi)", 95, 300,
	).Scan(&during); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reservations strictly during [95, 300]: %d\n", during)

	// Streaming LIMIT: closing after k rows stops the server-side scan.
	lim, err := db.Query("SELECT room FROM resv LIMIT 3")
	if err != nil {
		log.Fatal(err)
	}
	n := 0
	for lim.Next() {
		n++
	}
	lim.Close()
	if n != 3 {
		log.Fatalf("LIMIT 3 returned %d rows", n)
	}

	// EXPLAIN comes back as a text plan column.
	var firstLine string
	if err := db.QueryRow("EXPLAIN SELECT room FROM resv WHERE intersects(arrival, departure, 1, 2)").
		Scan(&firstLine); err != nil {
		log.Fatal(err)
	}
	if !strings.Contains(firstLine, "SELECT STATEMENT") {
		log.Fatalf("unexpected EXPLAIN header %q", firstLine)
	}

	// A transaction: buffered writes, visible only after COMMIT.
	tx, err := db.Begin()
	if err != nil {
		log.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO resv VALUES (99, 1000, 1010)"); err != nil {
		log.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	var count int64
	if err := db.QueryRow("SELECT count(*) FROM resv WHERE room = 99").Scan(&count); err != nil {
		log.Fatal(err)
	}
	if count != 1 {
		log.Fatalf("committed row not visible: count = %d", count)
	}

	fmt.Println("wireclient: all checks passed")
}
