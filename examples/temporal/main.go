// Command temporal demonstrates the RI-tree on a valid-time table — the
// temporal-database workload that motivates the paper. It shows:
//
//   - a named collection on the ritree access method, whose §4.6 temporal
//     capabilities (the special bounds "now" and "infinity") carry into
//     the unified API: employment records that are still open never need
//     index maintenance as time advances;
//   - Allen's 13 fine-grained relations (paper §4.5) for temporal joins
//     like "which assignments met assignment X?";
//   - time-travel queries by stabbing the valid-time axis.
//
// Times are days since 2000-01-01 to keep everything integer, as in the
// paper's all-integer schema.
package main

import (
	"fmt"
	"log"

	"ritree"
)

// day converts (year, dayOfYear) to a day count since year 2000.
func day(year, doy int64) int64 { return (year-2000)*365 + doy }

type employment struct {
	id     int64
	who    string
	role   string
	period ritree.Interval
}

func main() {
	db, err := ritree.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	// Now-relative intervals need an access method with the §4.6 clock:
	// the RI-tree. (A hint-backed collection would reject them.)
	emp, err := db.CreateCollection("employment", ritree.AccessMethod("ritree"))
	if err != nil {
		log.Fatal(err)
	}

	records := []employment{
		{1, "ada", "engineer", ritree.NewInterval(day(2001, 10), day(2003, 120))},
		{2, "ada", "lead", ritree.Interval{Lower: day(2003, 121), Upper: ritree.NowMarker}}, // open-ended: still employed
		{3, "bob", "engineer", ritree.NewInterval(day(2002, 50), day(2004, 10))},
		{4, "cyd", "analyst", ritree.NewInterval(day(2003, 120), day(2005, 30))},
		{5, "dee", "contract", ritree.NewInterval(day(2004, 200), ritree.Infinity)}, // perpetual license row
		{6, "eli", "engineer", ritree.NewInterval(day(2004, 11), day(2004, 300))},
	}
	byID := map[int64]employment{}
	for _, r := range records {
		if err := emp.Insert(r.period, r.id); err != nil {
			log.Fatal(err)
		}
		byID[r.id] = r
	}

	show := func(title string, ids []int64) {
		fmt.Println(title)
		for _, id := range ids {
			r := byID[id]
			fmt.Printf("  #%d %-4s %-9s %v\n", r.id, r.who, r.role, r.period)
		}
		fmt.Println()
	}

	// Time-travel: who was employed on a given day? The "now" rows only
	// qualify if the stab point is not in the future of `now`.
	if err := emp.SetNow(day(2004, 100)); err != nil { // evaluation time
		log.Fatal(err)
	}
	ids, _ := emp.Stab(day(2004, 50))
	show("employed on day 2004-050 (now = 2004-100):", ids)

	// Advance the clock: no index maintenance happens, yet the open
	// records follow along (§4.6: "completely avoids such an overhead").
	emp.SetNow(day(2006, 1))
	ids, _ = emp.Stab(day(2005, 300))
	show("employed on day 2005-300 (now = 2006-001):", ids)

	// Overlap join against a probe period.
	probe := ritree.NewInterval(day(2003, 1), day(2003, 365))
	ids, _ = emp.Intersecting(probe)
	show(fmt.Sprintf("records overlapping %v (year 2003):", probe), ids)

	// Fine-grained temporal relationships (paper §4.5): the IB+-tree and
	// the IST support only one bound well; the RI-tree serves both.
	adaFirst := byID[1].period
	ids, _ = emp.Query(ritree.MetBy, adaFirst)
	show("records that start exactly when ada's first stint ended (met-by):", ids)

	ids, _ = emp.Query(ritree.During, ritree.NewInterval(day(2002, 1), day(2005, 1)))
	show("records strictly inside [2002-001, 2005-001] (during):", ids)

	ids, _ = emp.Query(ritree.Before, ritree.NewInterval(day(2004, 1), day(2004, 2)))
	show("records finished before 2004 (before):", ids)

	// Ending an open record: delete the now-row, insert the closed one —
	// the only maintenance open intervals ever need.
	emp.Delete(ritree.Interval{Lower: day(2003, 121), Upper: ritree.NowMarker}, 2)
	emp.Insert(ritree.NewInterval(day(2003, 121), day(2006, 40)), 2)
	rec := byID[2]
	rec.period = ritree.NewInterval(day(2003, 121), day(2006, 40))
	byID[2] = rec
	emp.SetNow(day(2007, 1))
	ids, _ = emp.Stab(day(2006, 39))
	show("employed on day 2006-039 after closing ada's record:", ids)
}
