// Command quickstart is the smallest end-to-end tour of the public API:
// open a database, create collections on different access methods, run
// intersection / stabbing / Allen-relation queries through the uniform
// Querier interface, stream a cancellable scan, and look at the Figure
// 9/10 SQL machinery under the hood through the legacy single-index shim.
package main

import (
	"context"
	"fmt"
	"log"

	"ritree"
)

func main() {
	// One database, many collections: each collection is a named interval
	// relation served by a pluggable access method (paper §5).
	db, err := ritree.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// The paper's disk-relational RI-tree...
	flights, err := db.CreateCollection("flights") // default: AccessMethod("ritree")
	if err != nil {
		log.Fatal(err)
	}
	// ...and the main-memory HINT, side by side in the same database.
	sessions, err := db.CreateCollection("sessions", ritree.AccessMethod("hint"))
	if err != nil {
		log.Fatal(err)
	}

	// A handful of intervals: id -> [lower, upper].
	data := map[int64]ritree.Interval{
		1: ritree.NewInterval(2, 8),
		2: ritree.NewInterval(5, 12),
		3: ritree.NewInterval(10, 25),
		4: ritree.Point(15),
		5: ritree.NewInterval(0, 40),
	}
	for id, iv := range data {
		if err := flights.Insert(iv, id); err != nil {
			log.Fatal(err)
		}
		if err := sessions.Insert(iv, id); err != nil {
			log.Fatal(err)
		}
	}
	for _, info := range db.Collections() {
		fmt.Printf("collection %-10s method=%-6s\n", info.Name, info.Method)
	}

	// Both collections answer every query identically through the one
	// Querier interface — the access method only changes the cost profile.
	q := ritree.NewInterval(9, 14)
	for _, c := range []*ritree.Collection{flights, sessions} {
		ids, err := c.Intersecting(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s ∩ %v:\n", c.Name(), q)
		for _, id := range ids {
			fmt.Printf("  id %d = %v\n", id, data[id])
		}
	}

	stab, _ := flights.Stab(15)
	fmt.Printf("\nintervals containing the point 15: %v\n", stab)

	// Allen's fine-grained relations (paper §4.5): which intervals lie
	// strictly inside the query?
	inside, _ := sessions.Query(ritree.During, ritree.NewInterval(1, 30))
	fmt.Printf("intervals during [1, 30]: %v\n", inside)

	// Streaming, cancellable queries: Scan yields ids as the index
	// produces them; break out to stop early, and a cancelled context
	// surfaces as the iterator's final error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fmt.Print("\nfirst two ids streaming out of Scan: ")
	seen := 0
	for id, err := range flights.Scan(ctx, ritree.Intersects(ritree.NewInterval(0, 100))) {
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d ", id)
		if seen++; seen == 2 {
			break
		}
	}
	fmt.Println()

	// Deletion is a single relational statement (paper Figure 5).
	if ok, _ := flights.Delete(ritree.NewInterval(5, 12), 2); ok {
		fmt.Println("\ndeleted id 2 from flights")
	}
	left, _ := flights.Intersecting(q)
	fmt.Printf("now intersecting %v: %v\n", q, left)

	// Collections are SQL-visible too.
	res, err := db.Exec("SELECT id FROM flights WHERE intersects(lower, upper, 9, 14) ORDER BY id", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSQL over the collection: %v\n", res.Rows)

	// Under the hood: the legacy single-index shim exposes the paper's
	// Figure 9 two-fold SQL statement and its Figure 10 execution plan.
	idx, err := ritree.New()
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()
	for id, iv := range data {
		idx.Insert(iv, id)
	}
	fmt.Printf("\nintersection SQL:\n%s\n", idx.IntersectionSQL())
	plan, _ := idx.ExplainIntersection(q)
	fmt.Printf("\nexecution plan:\n%s", plan)

	// The paper's cost metric: physical block reads through the buffer
	// cache (2 KB pages, 200-page cache by default).
	db.ResetStats()
	flights.Intersecting(q)
	st := db.Stats()
	fmt.Printf("\nquery cost: %d logical / %d physical page reads\n",
		st.LogicalReads, st.PhysicalReads)
}
