// Command quickstart is the smallest end-to-end tour of the RI-tree public
// API: create an index, insert intervals, run intersection and stabbing
// queries, inspect the virtual backbone, and look at the Figure 9/10
// SQL machinery under the hood.
package main

import (
	"fmt"
	"log"

	"ritree"
)

func main() {
	idx, err := ritree.New()
	if err != nil {
		log.Fatal(err)
	}
	defer idx.Close()

	// A handful of intervals: id -> [lower, upper].
	data := map[int64]ritree.Interval{
		1: ritree.NewInterval(2, 8),
		2: ritree.NewInterval(5, 12),
		3: ritree.NewInterval(10, 25),
		4: ritree.Point(15),
		5: ritree.NewInterval(0, 40),
	}
	for id, iv := range data {
		if err := idx.Insert(iv, id); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("index: %s\n\n", idx)

	q := ritree.NewInterval(9, 14)
	ids, err := idx.Intersecting(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("intervals intersecting %v:\n", q)
	for _, id := range ids {
		fmt.Printf("  id %d = %v\n", id, data[id])
	}

	stab, _ := idx.Stab(15)
	fmt.Printf("\nintervals containing the point 15: %v\n", stab)

	// Allen's fine-grained relations (paper §4.5): which intervals lie
	// strictly inside the query?
	inside, _ := idx.Query(ritree.During, ritree.NewInterval(1, 30))
	fmt.Printf("intervals during [1, 30]: %v\n", inside)

	// Deletion is a single relational statement (paper Figure 5).
	if ok, _ := idx.Delete(ritree.NewInterval(5, 12), 2); ok {
		fmt.Println("\ndeleted id 2")
	}
	left, _ := idx.Intersecting(q)
	fmt.Printf("now intersecting %v: %v\n", q, left)

	// Under the hood: the paper's Figure 9 two-fold SQL statement and its
	// Figure 10 execution plan.
	fmt.Printf("\nintersection SQL:\n%s\n", idx.IntersectionSQL())
	plan, _ := idx.ExplainIntersection(q)
	fmt.Printf("\nexecution plan:\n%s", plan)

	// The paper's cost metric: physical block reads through the buffer
	// cache (2 KB pages, 200-page cache by default).
	idx.ResetStats()
	idx.Intersecting(q)
	st := idx.Stats()
	fmt.Printf("\nquery cost: %d logical / %d physical page reads\n",
		st.LogicalReads, st.PhysicalReads)
}
