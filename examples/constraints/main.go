// Command constraints demonstrates the remaining motivating workloads from
// the paper's introduction: "inaccurate measurements with tolerances in
// engineering databases" and "handling interval and finite domain
// constraints in declarative systems" [KS 91, KRVV 93].
//
// A parts catalog stores each part's resistance as a tolerance interval
// (nominal ± tolerance, in milliohms). Constraint queries then become
// interval queries:
//
//   - compatibility ("could this part measure 4.7 kΩ?") is a stabbing query;
//   - a specification window ("parts guaranteed within [4.5, 4.9] kΩ")
//     is an Allen During query;
//   - constraint propagation (intersecting a new constraint with every
//     stored domain) is an intersection query.
//
// It also shows the SQL face of the system: the tolerance bands live in a
// named collection (CREATE COLLECTION under the hood), queried both
// through the Querier API and through SQL with the INTERSECTS operator
// (paper §5).
package main

import (
	"fmt"
	"log"

	"ritree"
)

func main() {
	db, err := ritree.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateCollection("tolerances") // the paper's RI-tree serves it
	if err != nil {
		log.Fatal(err)
	}

	// Parts: id -> tolerance interval in milliohm.
	type part struct {
		name    string
		nominal int64
		tol     int64
	}
	parts := map[int64]part{
		1: {"R-4700-5%", 4700_000, 235_000},
		2: {"R-4700-1%", 4700_000, 47_000},
		3: {"R-4750-2%", 4750_000, 95_000},
		4: {"R-5100-10%", 5100_000, 510_000},
		5: {"R-4300-5%", 4300_000, 215_000},
	}
	domain := func(p part) ritree.Interval {
		return ritree.NewInterval(p.nominal-p.tol, p.nominal+p.tol)
	}
	for id, p := range parts {
		if err := idx.Insert(domain(p), id); err != nil {
			log.Fatal(err)
		}
	}

	// 1) Compatibility: which parts could measure exactly 4.820 kΩ?
	ids, _ := idx.Stab(4_820_000)
	fmt.Println("parts whose tolerance band contains 4.820 kΩ:")
	for _, id := range ids {
		fmt.Printf("  %s (band %v)\n", parts[id].name, domain(parts[id]))
	}

	// 2) Specification window: parts guaranteed inside [4.5, 4.9] kΩ —
	//    their whole band must lie within the window: Allen During
	//    (or Starts/Finishes/Equals for exact boundary matches).
	window := ritree.NewInterval(4_500_000, 4_900_000)
	fmt.Printf("\nparts guaranteed within %v:\n", window)
	for _, r := range []ritree.Relation{ritree.During, ritree.Starts, ritree.Finishes, ritree.Equals} {
		got, _ := idx.Query(r, window)
		for _, id := range got {
			fmt.Printf("  %s (%v, relation %v)\n", parts[id].name, domain(parts[id]), r)
		}
	}

	// 3) Constraint propagation: a new measurement constrains the value to
	//    [4.6, 4.75] kΩ; which stored domains stay satisfiable?
	constraint := ritree.NewInterval(4_600_000, 4_750_000)
	ids, _ = idx.Intersecting(constraint)
	fmt.Printf("\ndomains consistent with the constraint %v: ", constraint)
	for _, id := range ids {
		fmt.Printf("%s ", parts[id].name)
	}
	fmt.Println()

	// 4) The declarative face (§5): the same collection is an ordinary
	//    relation to the SQL engine, its INTERSECTS operator served by the
	//    access-method domain index CREATE COLLECTION installed.
	res, err := db.Exec(
		"SELECT id FROM tolerances WHERE intersects(lower, upper, :a, :b) ORDER BY id",
		map[string]interface{}{"a": constraint.Lower, "b": constraint.Upper})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsame query through SQL over the collection:")
	for _, row := range res.Rows {
		fmt.Printf("  part #%d = %s\n", row[0], parts[row[0]].name)
	}
	plan, _ := db.Exec(
		"EXPLAIN SELECT id FROM tolerances WHERE intersects(lower, upper, :a, :b)",
		map[string]interface{}{"a": constraint.Lower, "b": constraint.Upper})
	fmt.Printf("\nexecution plan:\n%s", plan.Plan)
}
