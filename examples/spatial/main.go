// Command spatial demonstrates the second workload from the paper's
// introduction: intervals as "line segments on a space-filling curve in
// spatial applications" [FR 89, BKK 99].
//
// Two-dimensional boxes on a 256x256 grid are mapped to runs of the
// Z-order (Morton) curve; each run is one interval in the RI-tree. A
// window query decomposes the query box into Z-runs the same way and asks
// the index for intersecting stored runs; exact box-overlap is a final
// refinement step. This is precisely the decomposition storage pattern the
// Tile Index uses internally — here the intervals land in a named
// collection served by the sharded main-memory HINT, showing the same
// workload on a second access method with zero code changes beyond the
// AccessMethod option.
package main

import (
	"fmt"
	"log"

	"ritree"
)

const gridBits = 8 // 256 x 256 grid, Z-values in [0, 65535]

// zEncode interleaves the bits of x and y into a Morton code.
func zEncode(x, y int64) int64 {
	var z int64
	for b := gridBits - 1; b >= 0; b-- {
		z = z<<1 | (x>>b)&1
		z = z<<1 | (y>>b)&1
	}
	return z
}

type box struct{ x0, y0, x1, y1 int64 } // inclusive corners

func (b box) overlaps(o box) bool {
	return b.x0 <= o.x1 && o.x0 <= b.x1 && b.y0 <= o.y1 && o.y0 <= b.y1
}

// zRuns decomposes a box into maximal Z-order curve runs by quadtree
// recursion: a grid quadrant fully inside the box is one contiguous run of
// the curve; partial quadrants recurse.
func zRuns(b box) []ritree.Interval {
	var runs []ritree.Interval
	var rec func(qx, qy, size int64)
	rec = func(qx, qy, size int64) {
		q := box{qx, qy, qx + size - 1, qy + size - 1}
		if !b.overlaps(q) {
			return
		}
		if b.x0 <= q.x0 && q.x1 <= b.x1 && b.y0 <= q.y0 && q.y1 <= b.y1 {
			lo := zEncode(qx, qy)
			runs = append(runs, ritree.NewInterval(lo, lo+size*size-1))
			return
		}
		if size == 1 {
			return
		}
		h := size / 2
		rec(qx, qy, h)
		rec(qx, qy+h, h)
		rec(qx+h, qy, h)
		rec(qx+h, qy+h, h)
	}
	rec(0, 0, 1<<gridBits)
	// Merge runs that happen to be adjacent on the curve.
	merged := runs[:0]
	for _, r := range runs {
		if n := len(merged); n > 0 && merged[n-1].Upper+1 == r.Lower {
			merged[n-1].Upper = r.Upper
		} else {
			merged = append(merged, r)
		}
	}
	return merged
}

func main() {
	db, err := ritree.OpenMemory()
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	idx, err := db.CreateCollection("zruns", ritree.AccessMethod("hint_sharded"))
	if err != nil {
		log.Fatal(err)
	}

	// A small map: buildings on the campus grid.
	objects := map[int64]struct {
		name string
		b    box
	}{
		1: {"library", box{16, 16, 47, 39}},
		2: {"lab", box{40, 32, 71, 63}},
		3: {"cafeteria", box{100, 20, 131, 43}},
		4: {"stadium", box{64, 128, 191, 223}},
		5: {"gate", box{0, 0, 7, 7}},
		6: {"tower", box{120, 120, 123, 131}},
	}

	// Store every object as its Z-curve runs, keyed by object id. A
	// collection happily holds several intervals per id.
	totalRuns := 0
	for id, obj := range objects {
		for _, run := range zRuns(obj.b) {
			if err := idx.Insert(run, id); err != nil {
				log.Fatal(err)
			}
			totalRuns++
		}
	}
	fmt.Printf("stored %d objects as %d Z-curve runs; index: %s\n\n",
		len(objects), totalRuns, idx)

	// Window query: decompose the window into Z-runs, collect candidate
	// ids from the RI-tree, deduplicate, refine with the exact box test.
	window := box{30, 30, 80, 70}
	candidates := map[int64]bool{}
	for _, run := range zRuns(window) {
		err := idx.IntersectingFunc(run, func(id int64) bool {
			candidates[id] = true
			return true
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("window query %v:\n", window)
	for id := range candidates {
		obj := objects[id]
		mark := "refined away (curve hit, box miss)"
		if obj.b.overlaps(window) {
			mark = "HIT"
		}
		fmt.Printf("  candidate %-9s %-34s %v\n", obj.name, fmt.Sprintf("%v", obj.b), mark)
	}

	// Point query: which building stands at (121, 125)?
	p := zEncode(121, 125)
	ids, _ := idx.Stab(p)
	fmt.Printf("\npoint (121,125) -> z=%d stabs: ", p)
	for _, id := range ids {
		if o := objects[id]; o.b.overlaps(box{121, 125, 121, 125}) {
			fmt.Printf("%s ", o.name)
		}
	}
	fmt.Println()

	st := db.Stats()
	fmt.Printf("\nI/O so far: %d logical / %d physical page reads\n",
		st.LogicalReads, st.PhysicalReads)
}
