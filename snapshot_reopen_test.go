package ritree

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// openSnapshotDB creates a file-backed database with one hint collection
// of n intervals and returns it with its path.
func openSnapshotDB(t *testing.T, method string, n int, opts ...Option) (*DB, *Collection, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "snap.db")
	db, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("resv", AccessMethod(method))
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]IntervalRow, n)
	for i := range rows {
		rows[i] = IntervalRow{NewInterval(int64(i*3), int64(i*3+10)), int64(i)}
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	return db, c, path
}

// reopenAndCompare reopens path (with opts) and asserts its query results
// match a snapshot-free reopen of a copy of the same files.
func reopenAndCompare(t *testing.T, path string, opts ...Option) *DB {
	t.Helper()
	refPath := filepath.Join(filepath.Dir(path), "ref.db")
	copyFile(t, path, refPath)
	if _, err := os.Stat(path + ".wal"); err == nil {
		copyFile(t, path+".wal", refPath+".wal")
	}
	db, err := Open(path, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Open(refPath, WithIndexSnapshots(false))
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	c, err := db.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	rc, err := ref.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Interval{NewInterval(0, 50), NewInterval(100, 130), NewInterval(-10, 1000000), Point(299)} {
		want, err1 := rc.Intersecting(q)
		got, err2 := c.Intersecting(q)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("query %v: snapshot reopen %v, rebuild reopen %v", q, got, want)
		}
	}
	return db
}

func TestReopenServesFromIndexSnapshot(t *testing.T) {
	for _, method := range []string{AccessMethodHINT, AccessMethodHINTSharded} {
		t.Run(method, func(t *testing.T) {
			db, _, path := openSnapshotDB(t, method, 400)
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			rdb := reopenAndCompare(t, path)
			defer rdb.Close()
			m := rdb.Metrics()
			if c := m.Counter("index.resv$am.snapshot.loads"); c != 1 {
				t.Fatalf("snapshot.loads = %d, want 1 (counters: %v)", c, m.CounterNames())
			}
			if c := m.Counter("index.resv$am.snapshot.rebuild_fallbacks"); c != 0 {
				t.Fatalf("snapshot.rebuild_fallbacks = %d, want 0", c)
			}
			if c := m.Counter("index.resv$am.snapshot.tail_rows"); c != 0 {
				t.Fatalf("snapshot.tail_rows = %d, want 0", c)
			}
		})
	}
}

func TestReopenSnapshotsOptOut(t *testing.T) {
	db, _, path := openSnapshotDB(t, AccessMethodHINT, 100, WithIndexSnapshots(false))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	rdb := reopenAndCompare(t, path, WithIndexSnapshots(false))
	defer rdb.Close()
	if c := rdb.Metrics().Counter("index.resv$am.snapshot.loads"); c != 0 {
		t.Fatalf("opted-out reopen loaded a snapshot (loads = %d)", c)
	}
}

func TestReopenSnapshotReplaysCrashedTail(t *testing.T) {
	// Flush persists the snapshot; rows inserted after it live only in the
	// WAL. A crash then loses nothing committed — and the reopen must
	// serve those tail rows on top of the (now stale) snapshot.
	db, c, path := openSnapshotDB(t, AccessMethodHINT, 300)
	defer db.Close()
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 300; i < 350; i++ {
		if err := c.Insert(NewInterval(int64(i*3), int64(i*3+10)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	crashed := snapshotFiles(t, path, filepath.Dir(path))

	rdb := reopenAndCompare(t, crashed)
	defer rdb.Close()
	m := rdb.Metrics()
	if v := m.Counter("wal.recovered_pages"); v == 0 {
		t.Fatal("reopen replayed no WAL pages — the test lost its premise")
	}
	if v := m.Counter("index.resv$am.snapshot.loads"); v != 1 {
		t.Fatalf("snapshot.loads = %d, want 1", v)
	}
	if v := m.Counter("index.resv$am.snapshot.tail_rows"); v != 50 {
		t.Fatalf("snapshot.tail_rows = %d, want 50", v)
	}
	rc, err := rdb.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if cnt := rc.Count(); cnt != 350 {
		t.Fatalf("recovered %d rows, want 350", cnt)
	}
}

func TestCrashBetweenSnapshotPersistAndCommit(t *testing.T) {
	// The snapshot blob is written through the same WAL as everything
	// else. Tearing the WAL inside the persist's commit batch must drop
	// the whole batch atomically: the reopened database sees no snapshot
	// (or a stale-but-valid one), never a half-written blob — and serves
	// exactly the committed rows either way.
	db, _, path := openSnapshotDB(t, AccessMethodHINT, 200)
	defer db.Close()
	// Persist the snapshot WITHOUT the page flush Close/Flush would do:
	// the blob now exists only as WAL records.
	if err := db.eng.PersistIndexSnapshots(); err != nil {
		t.Fatal(err)
	}
	crashed := snapshotFiles(t, path, filepath.Dir(path))
	fi, err := os.Stat(crashed + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the final commit record: the persist's batch is torn.
	if err := os.Truncate(crashed+".wal", fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rdb := reopenAndCompare(t, crashed)
	defer rdb.Close()
	m := rdb.Metrics()
	if v := m.Counter("index.resv$am.snapshot.rebuild_fallbacks"); v != 0 {
		t.Fatalf("torn persist produced a readable-but-bad snapshot (fallbacks = %d)", v)
	}
	if v := m.Counter("index.resv$am.snapshot.loads"); v != 0 {
		t.Fatalf("torn persist batch survived recovery (loads = %d)", v)
	}
	rc, err := rdb.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if cnt := rc.Count(); cnt != 200 {
		t.Fatalf("recovered %d rows, want 200", cnt)
	}
}

func TestCheckpointThresholdThroughDB(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetCheckpointThreshold(64 << 10)
	c, err := db.CreateCollection("resv", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := c.Insert(NewInterval(int64(i), int64(i+5)), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	m := db.Metrics()
	if v := m.Counter("wal.checkpoints"); v == 0 {
		t.Fatal("no threshold checkpoint fired over 2000 single-row commits")
	}
	fi, err := os.Stat(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	// The WAL may hold a post-checkpoint tail, but it must be bounded by
	// the threshold plus one commit batch, not the whole history.
	if fi.Size() > 256<<10 {
		t.Fatalf("WAL grew to %d bytes despite a 64 KiB checkpoint threshold", fi.Size())
	}
	ids, err := c.Intersecting(NewInterval(500, 510))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 16 {
		t.Fatalf("query after checkpoints returned %d ids, want 16", len(ids))
	}
}
