package ritree_test

// testing.B benchmarks, one per table/figure of the paper's evaluation
// (§6). These run the same harness as cmd/ribench at a CI-friendly scale
// and report the paper's metrics as custom benchmark outputs:
//
//	physIO/query   physical page reads per query (Figures 13, 14, 17)
//	entries        index entries (Figure 12)
//	ms/query       response time per query (Figures 13-17)
//
// go test -bench=. -benchmem regenerates every row family; cmd/ribench
// runs the full-scale versions.

import (
	"context"
	"math/rand"
	"testing"

	"ritree"

	"ritree/internal/bench"
	"ritree/internal/interval"
	ritcore "ritree/internal/ritree"
	"ritree/internal/workload"
)

// benchScale keeps testing.B runs quick; cmd/ribench -scale 1.0 is the
// paper-scale path.
const benchScale = 0.05

func benchConfig() bench.Config {
	return bench.Config{Scale: benchScale}.WithDefaults()
}

func reportMetrics(b *testing.B, m bench.Metrics) {
	b.Helper()
	b.ReportMetric(m.AvgPhysReads, "physIO/query")
	b.ReportMetric(m.AvgLogReads, "logIO/query")
	b.ReportMetric(m.AvgTimeMS, "ms/query")
	b.ReportMetric(m.AvgResults, "results/query")
}

func loadTrio(b *testing.B, c bench.Config, spec workload.Spec) (rit, tile, ist bench.AM, ivs []interval.Interval) {
	b.Helper()
	ivs = workload.Generate(spec, c.Seed)
	ids := workload.IDs(spec.N)
	var err error
	rit, err = bench.NewRITree(c)
	if err != nil {
		b.Fatal(err)
	}
	tile, err = bench.NewTile(c, ivs[:min(1000, len(ivs))], workload.Queries(50, 4000, c.Seed))
	if err != nil {
		b.Fatal(err)
	}
	ist, err = bench.NewIST(c)
	if err != nil {
		b.Fatal(err)
	}
	for _, am := range []bench.AM{rit, tile, ist} {
		if err := am.Load(ivs, ids); err != nil {
			b.Fatal(err)
		}
	}
	return rit, tile, ist, ivs
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkTable1Generators regenerates the Table 1 sample databases.
func BenchmarkTable1Generators(b *testing.B) {
	for _, k := range []workload.Kind{workload.D1, workload.D2, workload.D3, workload.D4} {
		spec := workload.Spec{Kind: k, N: 100000, D: 2000}
		b.Run(spec.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ivs := workload.Generate(spec, int64(i))
				if len(ivs) != spec.N {
					b.Fatal("bad generator output")
				}
			}
		})
	}
}

// BenchmarkFig12StorageOccupation reports index entries per method
// (Figure 12): IST = n, RI-tree = 2n, T-index = redundancy*n.
func BenchmarkFig12StorageOccupation(b *testing.B) {
	c := benchConfig()
	n := int(float64(400000) * benchScale)
	spec := workload.Spec{Kind: workload.D4, N: n, D: 2000}
	rit, tile, ist, _ := loadTrio(b, c, spec)
	for _, am := range []bench.AM{rit, tile, ist} {
		am := am
		b.Run(am.Name(), func(b *testing.B) {
			var entries int64
			for i := 0; i < b.N; i++ {
				entries = am.Entries()
			}
			b.ReportMetric(float64(entries), "entries")
			b.ReportMetric(float64(entries)/float64(n), "entries/interval")
		})
	}
}

// BenchmarkFig13Selectivity measures range queries on D1(100k,2k) at the
// paper's selectivity endpoints (Figure 13).
func BenchmarkFig13Selectivity(b *testing.B) {
	c := benchConfig()
	spec := workload.Spec{Kind: workload.D1, N: c2n(c, 100000), D: 2000}
	rit, tile, ist, ivs := loadTrio(b, c, spec)
	for _, sel := range []float64{0.005, 0.03} {
		qlen := workload.CalibrateLength(ivs, sel, c.Seed+1)
		queries := workload.Queries(50, qlen, c.Seed+2)
		for _, am := range []bench.AM{rit, tile, ist} {
			am := am
			b.Run(bname("sel", sel*100, am.Name()), func(b *testing.B) {
				var m bench.Metrics
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.Measure(c, am, int64(spec.N), queries)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportMetrics(b, m)
			})
		}
	}
}

// BenchmarkFig14Scaleup measures the scaleup series of Figure 14.
func BenchmarkFig14Scaleup(b *testing.B) {
	c := benchConfig()
	for _, n := range []int{1000, 10000, c2n(c, 1000000)} {
		spec := workload.Spec{Kind: workload.D4, N: n, D: 2000}
		rit, tile, ist, ivs := loadTrio(b, c, spec)
		qlen := workload.CalibrateLength(ivs, 0.006, c.Seed+3)
		queries := workload.Queries(20, qlen, c.Seed+4)
		for _, am := range []bench.AM{rit, tile, ist} {
			am := am
			b.Run(bname("n", float64(n), am.Name()), func(b *testing.B) {
				var m bench.Metrics
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.Measure(c, am, int64(n), queries)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportMetrics(b, m)
			})
		}
	}
}

// BenchmarkFig15Granularity measures the restricted-duration series of
// Figure 15 on the RI-tree.
func BenchmarkFig15Granularity(b *testing.B) {
	c := benchConfig()
	for _, r := range []struct{ min, max int64 }{{0, 4000}, {1500, 2500}} {
		n := c2n(c, 100000)
		spec := workload.Spec{Kind: workload.D3, N: n, D: 2000, MinDur: r.min, MaxDur: r.max}
		ivs := workload.Generate(spec, c.Seed)
		am, err := bench.NewRITree(c)
		if err != nil {
			b.Fatal(err)
		}
		if err := am.Load(ivs, workload.IDs(n)); err != nil {
			b.Fatal(err)
		}
		qlen := workload.CalibrateLength(ivs, 0.005, c.Seed+5)
		queries := workload.Queries(50, qlen, c.Seed+6)
		b.Run(bname("minlen", float64(r.min), "RI-tree"), func(b *testing.B) {
			var m bench.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.Measure(c, am, int64(n), queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetrics(b, m)
		})
	}
}

// BenchmarkFig16Duration measures the mean-duration series of Figure 16.
func BenchmarkFig16Duration(b *testing.B) {
	c := benchConfig()
	for _, d := range []int64{0, 2000} {
		n := c2n(c, 100000)
		spec := workload.Spec{Kind: workload.D4, N: n, D: d}
		rit, tile, ist, ivs := loadTrio(b, c, spec)
		qlen := workload.CalibrateLength(ivs, 0.01, c.Seed+7)
		queries := workload.Queries(20, qlen, c.Seed+8)
		for _, am := range []bench.AM{rit, tile, ist} {
			am := am
			b.Run(bname("dur", float64(d), am.Name()), func(b *testing.B) {
				var m bench.Metrics
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.Measure(c, am, int64(n), queries)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportMetrics(b, m)
			})
		}
	}
}

// BenchmarkFig17Sweep measures the sweeping point query of Figure 17 at
// both ends of the data space.
func BenchmarkFig17Sweep(b *testing.B) {
	c := benchConfig()
	n := c2n(c, 200000)
	spec := workload.Spec{Kind: workload.D2, N: n, D: 2000}
	rit, tile, ist, _ := loadTrio(b, c, spec)
	for _, dist := range []int64{0, 200000} {
		var queries []interval.Interval
		for j := int64(0); j < 10; j++ {
			queries = append(queries, interval.Point(interval.DomainMax-dist-j*197))
		}
		for _, am := range []bench.AM{rit, tile, ist} {
			am := am
			b.Run(bname("dist", float64(dist), am.Name()), func(b *testing.B) {
				var m bench.Metrics
				for i := 0; i < b.N; i++ {
					var err error
					m, err = bench.Measure(c, am, int64(n), queries)
					if err != nil {
						b.Fatal(err)
					}
				}
				reportMetrics(b, m)
			})
		}
	}
}

// BenchmarkWindowList reproduces the §6.1 Window-List comparison.
func BenchmarkWindowList(b *testing.B) {
	c := benchConfig()
	n := c2n(c, 100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	qlen := workload.CalibrateLength(ivs, 0.005, c.Seed+9)
	queries := workload.Queries(50, qlen, c.Seed+10)
	rit, err := bench.NewRITree(c)
	if err != nil {
		b.Fatal(err)
	}
	wl, err := bench.NewWinList(c)
	if err != nil {
		b.Fatal(err)
	}
	for _, am := range []bench.AM{rit, wl} {
		if err := am.Load(ivs, workload.IDs(n)); err != nil {
			b.Fatal(err)
		}
		am := am
		b.Run(am.Name(), func(b *testing.B) {
			var m bench.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.Measure(c, am, int64(n), queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetrics(b, m)
		})
	}
}

// BenchmarkAblationMinstep quantifies the §3.4 minstep pruning.
func BenchmarkAblationMinstep(b *testing.B) {
	c := benchConfig()
	n := c2n(c, 100000)
	spec := workload.Spec{Kind: workload.D3, N: n, D: 2000, MinDur: 1500, MaxDur: 2500}
	ivs := workload.Generate(spec, c.Seed)
	qlen := workload.CalibrateLength(ivs, 0.002, c.Seed+11)
	queries := workload.Queries(50, qlen, c.Seed+12)
	base, err := bench.NewRITree(c)
	if err != nil {
		b.Fatal(err)
	}
	noms, err := bench.NewRITreeOpts(c, ritcore.Options{DisableMinStep: true}, "no-minstep")
	if err != nil {
		b.Fatal(err)
	}
	for _, am := range []bench.AM{base, noms} {
		if err := am.Load(ivs, workload.IDs(n)); err != nil {
			b.Fatal(err)
		}
		am := am
		b.Run(am.Name(), func(b *testing.B) {
			var m bench.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.Measure(c, am, int64(n), queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetrics(b, m)
		})
	}
}

// BenchmarkAblationQueryForm compares Figure 8's three-branch query with
// Figure 9's two-fold form.
func BenchmarkAblationQueryForm(b *testing.B) {
	c := benchConfig()
	n := c2n(c, 100000)
	spec := workload.Spec{Kind: workload.D1, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	qlen := workload.CalibrateLength(ivs, 0.01, c.Seed+13)
	queries := workload.Queries(50, qlen, c.Seed+14)
	two, err := bench.NewRITree(c)
	if err != nil {
		b.Fatal(err)
	}
	three, err := bench.NewRITreeOpts(c, ritcore.Options{ThreeBranchQuery: true}, "fig8-form")
	if err != nil {
		b.Fatal(err)
	}
	for _, am := range []bench.AM{two, three} {
		if err := am.Load(ivs, workload.IDs(n)); err != nil {
			b.Fatal(err)
		}
		am := am
		b.Run(am.Name(), func(b *testing.B) {
			var m bench.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.Measure(c, am, int64(n), queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetrics(b, m)
		})
	}
}

// BenchmarkAblationSkeleton measures the §7 materialized-backbone outlook.
func BenchmarkAblationSkeleton(b *testing.B) {
	c := benchConfig()
	n := c2n(c, 100000)
	spec := workload.Spec{Kind: workload.D2, N: n, D: 2000}
	ivs := workload.Generate(spec, c.Seed)
	qlen := workload.CalibrateLength(ivs, 0.002, c.Seed+15)
	queries := workload.Queries(50, qlen, c.Seed+16)
	base, err := bench.NewRITree(c)
	if err != nil {
		b.Fatal(err)
	}
	skel, err := bench.NewRITreeOpts(c, ritcore.Options{MaterializeBackbone: true}, "skeleton")
	if err != nil {
		b.Fatal(err)
	}
	for _, am := range []bench.AM{base, skel} {
		if err := am.Load(ivs, workload.IDs(n)); err != nil {
			b.Fatal(err)
		}
		am := am
		b.Run(am.Name(), func(b *testing.B) {
			var m bench.Metrics
			for i := 0; i < b.N; i++ {
				var err error
				m, err = bench.Measure(c, am, int64(n), queries)
				if err != nil {
					b.Fatal(err)
				}
			}
			reportMetrics(b, m)
		})
	}
}

// BenchmarkCoreInsert measures single-interval insertion cost (Figure 5's
// single-statement insert, O(log_b n) I/Os). Allocation counts are part
// of the contract: they keep the hot-path garbage regressions visible.
func BenchmarkCoreInsert(b *testing.B) {
	idx, err := ritree.New()
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1 << 20)
		if err := idx.Insert(ritree.NewInterval(lo, lo+rng.Int63n(2048)), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreIntersecting measures intersection query cost on a loaded
// index through the public API — the target of the query-scratch pooling
// in internal/ritree (transient node collections and scan bounds reused
// across queries).
func BenchmarkCoreIntersecting(b *testing.B) {
	idx, err := ritree.New()
	if err != nil {
		b.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(2))
	n := 50000
	ivs := make([]ritree.Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 20)
		ivs[i] = ritree.NewInterval(lo, lo+rng.Int63n(2048))
		ids[i] = int64(i)
	}
	if err := idx.BulkLoad(ivs, ids); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1 << 20)
		n, err := idx.CountIntersecting(ritree.NewInterval(lo, lo+5000))
		if err != nil {
			b.Fatal(err)
		}
		total += n
	}
	if total == 0 {
		b.Fatal("queries returned nothing")
	}
}

// BenchmarkCoreHINTIntersecting measures the same query shape through
// the public main-memory HINT API (sorted subdivisions, flat storage) —
// the headline number behind the hint/hintopt experiments.
func BenchmarkCoreHINTIntersecting(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(bname("shards", float64(shards), "HINT"), func(b *testing.B) {
			idx, err := ritree.NewHINT(ritree.WithHINTShards(shards))
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			n := 50000
			ivs := make([]ritree.Interval, n)
			ids := make([]int64, n)
			for i := range ivs {
				lo := rng.Int63n(1 << 20)
				ivs[i] = ritree.NewInterval(lo, lo+rng.Int63n(2048))
				ids[i] = int64(i)
			}
			if err := idx.BulkLoad(ivs, ids); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			var total int64
			for i := 0; i < b.N; i++ {
				lo := rng.Int63n(1 << 20)
				n, err := idx.CountIntersecting(ritree.NewInterval(lo, lo+5000))
				if err != nil {
					b.Fatal(err)
				}
				total += n
			}
			if total == 0 {
				b.Fatal("queries returned nothing")
			}
		})
	}
}

// BenchmarkCoreHINTInsert measures incremental insertion into the
// main-memory HINT (sorted overlay path).
func BenchmarkCoreHINTInsert(b *testing.B) {
	idx, err := ritree.NewHINT()
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := rng.Int63n(1 << 20)
		if err := idx.Insert(ritree.NewInterval(lo, lo+rng.Int63n(2048)), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func c2n(c bench.Config, base int) int {
	n := int(float64(base) * c.Scale)
	if n < 1000 {
		n = 1000
	}
	return n
}

func bname(key string, v float64, am string) string {
	if v == float64(int64(v)) {
		return key + "=" + itoa(int64(v)) + "/" + am
	}
	return key + "=" + f1s(v) + "/" + am
}

func itoa(v int64) string { return fmtInt(v) }

func fmtInt(v int64) string {
	// strconv-free tiny formatter to keep the benchmark file focused.
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

func f1s(v float64) string {
	n := int64(v * 10)
	return fmtInt(n/10) + "." + fmtInt(n%10)
}

// BenchmarkSQLStreamLimit measures the streaming SQL cursor against the
// materializing Exec path on the same collection SELECT — the CI smoke
// coverage for the volcano executor (ribench -exp sqlstream is the
// full-scale version). The LIMIT variant must do O(k) leaf work.
func BenchmarkSQLStreamLimit(b *testing.B) {
	db, err := ritree.OpenMemory()
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("iv", ritree.AccessMethod(ritree.AccessMethodHINT))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	n := 50000
	ivs := make([]ritree.Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 20)
		ivs[i] = ritree.NewInterval(lo, lo+rng.Int63n(2048))
		ids[i] = int64(i)
	}
	if err := c.BulkLoad(ivs, ids); err != nil {
		b.Fatal(err)
	}
	sql := "SELECT id FROM iv WHERE intersects(lower, upper, :a, :b)"
	binds := func() map[string]interface{} {
		lo := rng.Int63n(1 << 20)
		return map[string]interface{}{"a": lo, "b": lo + 5000}
	}
	b.Run("exec-materialized", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := db.Exec(sql, binds()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-limit10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(context.Background(), sql+" LIMIT 10", binds())
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
			if st := rows.Stats(); st.LeafRows > 10 {
				b.Fatalf("LIMIT 10 pulled %d leaf rows", st.LeafRows)
			}
		}
	})
	b.Run("query-allen-during", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rows, err := db.Query(context.Background(),
				"SELECT id FROM iv WHERE allen_during(lower, upper, :a, :b)", binds())
			if err != nil {
				b.Fatal(err)
			}
			for rows.Next() {
			}
			if err := rows.Err(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
