// Package ritree is a Go implementation of the Relational Interval Tree
// (RI-tree) of Kriegel, Pötke and Seidl, "Managing Intervals Efficiently in
// Object-Relational Databases", VLDB 2000 — together with the complete
// relational substrate it runs on (page store with buffer cache, B+-tree
// composite indexes, heap relations, a SQL engine with extensible
// indexing) and the paper's competitor access methods.
//
// # One database, many collections
//
// The primary entry point is the DB handle: one database hosting any
// number of named interval collections, each served by a pluggable access
// method (paper §5's extensible indexing) behind one uniform Querier
// interface:
//
//	db, _ := ritree.OpenMemory()
//	defer db.Close()
//	flights, _ := db.CreateCollection("flights", ritree.AccessMethod("hint"))
//	flights.Insert(ritree.NewInterval(10, 20), 1)
//	ids, _ := flights.Intersecting(ritree.NewInterval(15, 18)) // -> [1]
//
//	// Streaming, cancellable queries (range-over-func):
//	for id, err := range flights.Scan(ctx, ritree.Intersects(ritree.NewInterval(0, 100))) {
//		...
//	}
//
// ritree.Open(path) opens a file-backed database; collections persist in
// its catalog and are served again after reopening. See MIGRATION.md for
// the mapping from the pre-DB entry points.
//
// # The legacy single-index API
//
// ritree.New (an RI-tree over its own in-memory database) and
// ritree.NewHINT (a bare main-memory HINT) remain as single-collection
// compatibility shims:
//
//	idx, _ := ritree.New()
//	defer idx.Close()
//	idx.Insert(ritree.NewInterval(10, 20), 1)
//	idx.Insert(ritree.NewInterval(15, 40), 2)
//	ids, _ := idx.Intersecting(ritree.NewInterval(18, 19)) // -> [1 2]
//
// The RI-tree stores intervals in an ordinary relation
// (node, lower, upper, id) under two composite B+-tree indexes; the
// backbone tree is virtual — O(1) persistent parameters — so inserts cost
// O(log_b n) I/Os and an intersection query O(h·log_b n + r/b).
package ritree

import (
	"fmt"
	"time"

	"ritree/internal/interval"
	"ritree/internal/obs"
	"ritree/internal/pagestore"
	ritcore "ritree/internal/ritree"
	"ritree/internal/sqldb"
)

// Interval is a closed interval [Lower, Upper] over int64.
type Interval = interval.Interval

// Relation is one of Allen's thirteen interval relations (paper §4.5).
type Relation = interval.Relation

// The thirteen Allen relations, usable with Querier.Query.
const (
	Before       = interval.Before
	Meets        = interval.Meets
	Overlaps     = interval.Overlaps
	FinishedBy   = interval.FinishedBy
	Contains     = interval.Contains
	Starts       = interval.Starts
	Equals       = interval.Equals
	StartedBy    = interval.StartedBy
	During       = interval.During
	Finishes     = interval.Finishes
	OverlappedBy = interval.OverlappedBy
	MetBy        = interval.MetBy
	After        = interval.After
)

// Infinity is the sentinel upper bound for intervals that never end (§4.6).
const Infinity = interval.Infinity

// NowMarker is the sentinel upper bound for now-relative intervals (§4.6).
const NowMarker = interval.NowMarker

// IOStats is the I/O counter snapshot of the underlying page store. The
// paper's primary cost metric is PhysicalReads under a small LRU buffer
// cache (2 KB blocks, 200-block cache by default, as in §6.1).
type IOStats = pagestore.Stats

// Result is a SQL statement result (see DB.Exec).
type Result = sqldb.Result

// Rows is a streaming SELECT cursor (see DB.Query): Next/Scan/Err/Close
// in the database/sql style, over the same volcano pipeline Exec drains.
type Rows = sqldb.Rows

// ExecStats counts the work one cursor performed (Rows.Stats); LeafRows
// is the number of rows the access-method scans produced, the observable
// evidence that LIMIT and early Close stop the scan.
type ExecStats = sqldb.ExecStats

// PlanNodeStats is one operator's node in the executed-plan stats tree
// (Rows.PlanStats, EXPLAIN ANALYZE, SlowQuery.Plan): rows produced,
// leaf rows scanned, index probes, residual-filter drops, join rebinds,
// spill sizes, and — when the plan ran under EXPLAIN ANALYZE — wall time.
type PlanNodeStats = sqldb.PlanNodeStats

// MetricsSnapshot is a point-in-time copy of a DB's metrics registry
// (DB.Metrics): counters, gauges, and latency-histogram summaries keyed
// by dotted name. Sub diffs two snapshots to meter a window of work.
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot summarizes one latency histogram inside a
// MetricsSnapshot: count, sum, max, and p50/p95/p99 upper bounds.
type HistogramSnapshot = obs.HistogramSnapshot

// SlowQuery is one captured slow statement (DB.SlowQueries).
type SlowQuery = sqldb.SlowQuery

// Transient is a transient collection bind for TABLE(:name) SQL sources
// (paper §4.2). It was formerly exported as ritree.Collection; Collection
// now names the persistent, access-method-backed interval collections.
type Transient = sqldb.Transient

// NewInterval returns the interval [lower, upper].
func NewInterval(lower, upper int64) Interval { return interval.New(lower, upper) }

// Point returns the degenerate interval [p, p].
func Point(p int64) Interval { return interval.Point(p) }

// ClassifyRelation returns the Allen relation between a and b.
func ClassifyRelation(a, b Interval) Relation { return interval.Classify(a, b) }

type config struct {
	path           string
	pageSize       int
	cacheSize      int
	readLatency    time.Duration
	slowQuery      time.Duration
	treeName       string
	treeOpts       ritcore.Options
	indexSnapshots bool
}

// Option configures Open, OpenMemory, New and OpenIndex.
type Option func(*config)

// WithPageSize sets the disk block size in bytes (default 2048, the paper's
// setup). Must be a power of two >= 128.
func WithPageSize(bytes int) Option { return func(c *config) { c.pageSize = bytes } }

// WithCacheSize sets the buffer cache capacity in pages (default 200, the
// paper's Oracle block cache).
func WithCacheSize(pages int) Option { return func(c *config) { c.cacheSize = pages } }

// WithReadLatency makes every physical page read sleep for d, so wall-clock
// measurements approximate a disk with that access time.
func WithReadLatency(d time.Duration) Option {
	return func(c *config) { c.readLatency = d }
}

// WithSlowQueryThreshold arms the slow-query trace log from Open: any
// statement whose execution takes at least d is captured into a bounded
// ring buffer with its SQL text, bind count, duration, and operator
// stats, drained by DB.SlowQueries. Zero (the default) disables capture;
// DB.SetSlowQueryThreshold changes it at runtime.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *config) { c.slowQuery = d }
}

// WithTreeName sets the name of the legacy Index's interval relation
// (default "intervals"). It has no effect on DB collections, which are
// named explicitly.
func WithTreeName(name string) Option { return func(c *config) { c.treeName = name } }

// WithIndexSnapshots toggles persisted index snapshots (default on).
// When enabled on a file-backed database, Flush and Close persist each
// HINT collection's optimized in-memory layout next to its heap, and a
// later Open deserializes that snapshot — replaying only the rows
// written after it — instead of rebuilding the index from every heap
// row. A snapshot that fails validation (checksum, geometry, torn
// write) is discarded and the index rebuilds in full, so correctness
// never depends on the snapshot. Pass false to always rebuild on attach
// and to skip writing snapshots.
func WithIndexSnapshots(on bool) Option {
	return func(c *config) { c.indexSnapshots = on }
}

func applyOptions(opts []Option) *config {
	cfg := &config{
		pageSize:       pagestore.DefaultPageSize,
		cacheSize:      pagestore.DefaultCacheSize,
		treeName:       "intervals",
		indexSnapshots: true,
	}
	for _, o := range opts {
		o(cfg)
	}
	return cfg
}

// Index is the legacy single-collection view of an RI-tree: one tree over
// an embedded database, created by New (in-memory) or OpenIndex
// (file-backed). It predates the DB/Collection API and remains fully
// supported — it is now a thin shim over a DB whose single interval
// relation is the tree itself. All methods are safe for concurrent use:
// queries share the database read lock, mutations take the write lock
// (the paper inherits this from Oracle's transaction management; here a
// reader-writer lock provides statement-level isolation).
type Index struct {
	db   *DB
	tree *ritcore.Tree
}

// New creates an in-memory RI-tree: a one-line shim over a
// single-collection in-memory DB.
func New(opts ...Option) (*Index, error) {
	return newIndexOn(applyOptions(opts), nil)
}

// OpenIndex creates or opens a file-backed RI-tree at path — the legacy
// single-index equivalent of Open (which returns the multi-collection DB
// handle this shim is built on).
func OpenIndex(path string, opts ...Option) (*Index, error) {
	cfg := applyOptions(opts)
	cfg.path = path
	return newIndexOn(cfg, nil)
}

// IndexOf returns the legacy single-tree view named by WithTreeName over
// an already open DB, creating the tree if absent. It is how New and
// OpenIndex attach their tree, exposed for callers migrating piecemeal.
func IndexOf(db *DB, opts ...Option) (*Index, error) {
	return newIndexOn(applyOptions(opts), db)
}

// newIndexOn builds the legacy Index over db, opening one first per cfg
// when db is nil.
func newIndexOn(cfg *config, db *DB) (*Index, error) {
	var err error
	if db == nil {
		if cfg.path == "" {
			db, err = openMemoryCfg(cfg)
		} else {
			db, err = openPathCfg(cfg.path, cfg)
		}
		if err != nil {
			return nil, err
		}
	}
	var tree *ritcore.Tree
	if _, tabErr := db.rdb.Table(cfg.treeName); tabErr == nil {
		tree, err = ritcore.Open(db.rdb, cfg.treeName, cfg.treeOpts)
	} else {
		tree, err = ritcore.Create(db.rdb, cfg.treeName, cfg.treeOpts)
	}
	if err != nil {
		return nil, err
	}
	// The legacy tree is not a catalog index, so it binds its metric
	// family directly: "tree.<name>.*" alongside the DB's other families.
	tree.SetMetrics(db.reg, "tree."+cfg.treeName)
	return &Index{db: db, tree: tree}, nil
}

// DB returns the database hosting this index, giving legacy callers a
// path into the collection API without reopening.
func (x *Index) DB() *DB { return x.db }

// Insert registers iv under id. Multiple registrations of the same
// (interval, id) pair are allowed and count separately. Intervals with
// Upper == Infinity or Upper == NowMarker get the §4.6 temporal handling.
func (x *Index) Insert(iv Interval, id int64) error {
	x.db.mu.Lock()
	defer x.db.mu.Unlock()
	return x.tree.Insert(iv, id)
}

// InsertInfinite registers [lower, ∞) under id.
func (x *Index) InsertInfinite(lower, id int64) error {
	x.db.mu.Lock()
	defer x.db.mu.Unlock()
	return x.tree.InsertInfinite(lower, id)
}

// InsertNow registers the now-relative interval [lower, now] under id; its
// effective upper bound tracks SetNow with zero index maintenance.
func (x *Index) InsertNow(lower, id int64) error {
	x.db.mu.Lock()
	defer x.db.mu.Unlock()
	return x.tree.InsertNow(lower, id)
}

// Delete removes one registration of (iv, id), reporting whether it existed.
func (x *Index) Delete(iv Interval, id int64) (bool, error) {
	x.db.mu.Lock()
	defer x.db.mu.Unlock()
	return x.tree.Delete(iv, id)
}

// BulkLoad inserts ivs[i] under ids[i] and rebuilds the indexes tightly
// packed — the fast path for loading large datasets.
func (x *Index) BulkLoad(ivs []Interval, ids []int64) error {
	x.db.mu.Lock()
	defer x.db.mu.Unlock()
	return x.tree.BulkLoad(ivs, ids)
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (x *Index) Intersecting(q Interval) ([]int64, error) {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.Intersecting(q)
}

// IntersectingFunc streams the ids of intervals intersecting q; return
// false from fn to stop early.
func (x *Index) IntersectingFunc(q Interval, fn func(id int64) bool) error {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.IntersectingFunc(q, fn)
}

// Stab returns the ids of all intervals containing the point p.
func (x *Index) Stab(p int64) ([]int64, error) {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.Stab(p)
}

// CountIntersecting returns the number of intervals intersecting q.
func (x *Index) CountIntersecting(q Interval) (int64, error) {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.CountIntersecting(q)
}

// Query returns the ids of all intervals i with "i r q" for any of Allen's
// thirteen relations (paper §4.5).
func (x *Index) Query(r Relation, q Interval) ([]int64, error) {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.QueryRelation(r, q)
}

// SetNow sets the evaluation time for now-relative intervals (§4.6).
func (x *Index) SetNow(now int64) {
	x.db.mu.Lock()
	defer x.db.mu.Unlock()
	x.tree.SetNow(now)
}

// Now returns the evaluation time for now-relative intervals.
func (x *Index) Now() int64 {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.Now()
}

// Count returns the number of registered intervals.
func (x *Index) Count() int64 {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.Count()
}

// Height returns the virtual backbone height (§3.5) — it depends on the
// data space extent and granularity, never on Count.
func (x *Index) Height() int {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.Height()
}

// IndexEntries returns the total composite index entries (2 per interval).
func (x *Index) IndexEntries() int64 {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.IndexEntries()
}

// Stats returns the I/O counters of the page store.
func (x *Index) Stats() IOStats { return x.db.Stats() }

// ResetStats zeroes the I/O counters.
func (x *Index) ResetStats() { x.db.ResetStats() }

// Exec runs a SQL statement against the embedded engine. The interval
// relation is visible as the table named by WithTreeName (default
// "intervals") with columns (node, lower, upper, id); the engine also
// serves CREATE TABLE / CREATE INDEX (including INDEXTYPE IS ritree, §5),
// CREATE COLLECTION ... USING, INSERT, DELETE, SELECT with UNION ALL,
// TABLE(:transient) sources, and EXPLAIN.
func (x *Index) Exec(sql string, binds map[string]interface{}) (*Result, error) {
	return x.db.Exec(sql, binds)
}

// IntersectionSQL returns the paper's Figure 9 two-fold intersection
// statement for this index's relations.
func (x *Index) IntersectionSQL() string { return x.tree.IntersectionSQL() }

// IntersectionBinds returns the transient leftNodes/rightNodes collections
// and scalar binds for executing IntersectionSQL against q.
func (x *Index) IntersectionBinds(q Interval) map[string]interface{} {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.IntersectionBinds(q)
}

// ExplainIntersection returns the Figure 10-style execution plan of the
// intersection statement.
func (x *Index) ExplainIntersection(q Interval) (string, error) {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	return x.tree.ExplainIntersection(x.db.eng, q)
}

// Flush writes all dirty pages to the backing store.
func (x *Index) Flush() error { return x.db.Flush() }

// Close flushes and closes the index's database.
func (x *Index) Close() error { return x.db.Close() }

// String summarizes the index.
func (x *Index) String() string {
	x.db.mu.RLock()
	defer x.db.mu.RUnlock()
	p := x.tree.Params()
	return fmt.Sprintf("ritree.Index{n=%d, h=%d, offset=%d, leftRoot=%d, rightRoot=%d, minstep=%d}",
		x.tree.Count(), x.tree.Height(), p.Offset, p.LeftRoot, p.RightRoot, p.MinStep)
}
