package ritree

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"ritree/internal/sqldb"
)

// mergeJoinDB builds two collections under the given access method, with
// bound patterns exercising every Allen relation: random spans plus
// hand-placed duplicates, shared endpoints, touching and zero-length
// intervals.
func mergeJoinDB(t *testing.T, method string, perSide int) (*DB, *Collection, *Collection) {
	t.Helper()
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	lhs, err := db.CreateCollection("lhs", AccessMethod(method))
	if err != nil {
		t.Fatal(err)
	}
	rhs, err := db.CreateCollection("rhs", AccessMethod(method))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	id := int64(0)
	fill := func(c *Collection) {
		for i := 0; i < perSide; i++ {
			lo := rng.Int63n(200)
			if err := c.Insert(NewInterval(lo, lo+rng.Int63n(60)), id); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for _, iv := range [][2]int64{{50, 80}, {50, 80}, {80, 80}, {80, 120}, {50, 120}, {60, 80}, {50, 65}, {0, 400}} {
			if err := c.Insert(NewInterval(iv[0], iv[1]), id); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	fill(lhs)
	fill(rhs)
	return db, lhs, rhs
}

// crosscheckJoin runs the predicate under both strategies and fails on
// any disagreement. It returns the merge-join EXPLAIN for feed checks.
func crosscheckJoin(t *testing.T, db *DB, pred string) string {
	t.Helper()
	q := "SELECT s.id, q.id FROM lhs q, rhs s WHERE " + pred + " ORDER BY 1, 2"
	db.SetMergeJoinEnabled(true)
	plan, err := db.Exec("EXPLAIN "+q, nil)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	if !strings.Contains(plan.Plan, "INTERVAL MERGE JOIN") {
		t.Fatalf("%s: not planned as a merge join:\n%s", pred, plan.Plan)
	}
	got, err := db.Exec(q, nil)
	if err != nil {
		t.Fatalf("merge: %v", err)
	}
	db.SetMergeJoinEnabled(false)
	want, err := db.Exec(q, nil)
	db.SetMergeJoinEnabled(true)
	if err != nil {
		t.Fatalf("nested loops: %v", err)
	}
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: merge %d pairs, nested loops %d", pred, len(got.Rows), len(want.Rows))
	}
	for i := range got.Rows {
		if got.Rows[i][0] != want.Rows[i][0] || got.Rows[i][1] != want.Rows[i][1] {
			t.Fatalf("%s: pair %d: merge %v, nested loops %v", pred, i, got.Rows[i], want.Rows[i])
		}
	}
	return plan.Plan
}

func TestMergeJoinAcrossAccessMethods(t *testing.T) {
	preds := make([]string, 0, 14)
	for _, op := range sqldb.AllenOperatorNames() {
		preds = append(preds, op+"(s.lower, s.upper, q.lower, q.upper)")
	}
	preds = append(preds, "intersects(s.lower, s.upper, q.lower, q.upper)")
	for _, method := range []string{AccessMethodRITree, AccessMethodHINT, AccessMethodHINTSharded} {
		t.Run(method, func(t *testing.T) {
			db, _, _ := mergeJoinDB(t, method, 120)
			ordered := method != AccessMethodRITree // HINT offers the ordered stream
			for _, pred := range preds {
				plan := crosscheckJoin(t, db, pred)
				if ordered && !strings.Contains(plan, "ORDERED DOMAIN INDEX SCAN") {
					t.Fatalf("%s: no ordered feed:\n%s", pred, plan)
				}
				if !ordered && !strings.Contains(plan, "SORT BY LOWER") {
					t.Fatalf("%s: expected sort-fallback feeds:\n%s", pred, plan)
				}
			}
		})
	}
}

func TestMergeJoinNowRelativeRows(t *testing.T) {
	// Now-relative intervals (§4.6) live only in ritree collections; both
	// strategies must resolve subject-side NOW rows against the same
	// frozen clock and treat query-side NOW uppers as plain magnitudes.
	db, lhs, rhs := mergeJoinDB(t, AccessMethodRITree, 60)
	for i := int64(0); i < 5; i++ {
		if err := lhs.InsertNow(40+10*i, 8000+i); err != nil {
			t.Fatal(err)
		}
		if err := rhs.InsertNow(45+10*i, 8100+i); err != nil {
			t.Fatal(err)
		}
	}
	if err := lhs.SetNow(70); err != nil {
		t.Fatal(err)
	}
	if err := rhs.SetNow(70); err != nil {
		t.Fatal(err)
	}
	sawNow := false
	for _, op := range []string{"intersects", "allen_overlaps", "allen_during", "allen_before", "allen_finishes"} {
		crosscheckJoin(t, db, op+"(s.lower, s.upper, q.lower, q.upper)")
		r, err := db.Exec("SELECT s.id FROM lhs q, rhs s WHERE "+op+"(s.lower, s.upper, q.lower, q.upper)", nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r.Rows {
			if row[0] >= 8100 {
				sawNow = true
			}
		}
	}
	if !sawNow {
		t.Fatal("no now-relative subject row ever joined — the clock path is untested")
	}
}

func TestMergeJoinOrderedFeedsSkipSorting(t *testing.T) {
	// HINT feeds stream pre-sorted off the flat layout: the whole join
	// must run with zero explicit sort rows, and EXPLAIN ANALYZE must
	// show the ordered scans with live sweep counters.
	db, _, _ := mergeJoinDB(t, AccessMethodHINT, 150)
	rows, err := db.Query(context.Background(),
		"SELECT s.id, q.id FROM lhs q, rhs s WHERE intersects(s.lower, s.upper, q.lower, q.upper)", nil)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	st := rows.Stats()
	rows.Close()
	if n == 0 {
		t.Fatal("empty join")
	}
	if st.JoinStrategy != "merge" {
		t.Fatalf("JoinStrategy = %q", st.JoinStrategy)
	}
	if st.SweepSortRows != 0 {
		t.Fatalf("ordered feeds still sorted %d rows", st.SweepSortRows)
	}
	if st.SweepPairs < int64(n) || st.SweepActivePeak <= 0 {
		t.Fatalf("sweep counters: pairs=%d active=%d (rows out %d)", st.SweepPairs, st.SweepActivePeak, n)
	}
	r, err := db.Exec("EXPLAIN ANALYZE SELECT s.id FROM lhs q, rhs s WHERE intersects(s.lower, s.upper, q.lower, q.upper)", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"INTERVAL MERGE JOIN (INTERSECTS)", "ORDERED DOMAIN INDEX SCAN", " pairs=", " active="} {
		if !strings.Contains(r.Plan, want) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", want, r.Plan)
		}
	}
	// The ritree fallback on the same query sorts both feeds.
	db2, _, _ := mergeJoinDB(t, AccessMethodRITree, 40)
	rows2, err := db2.Query(context.Background(),
		"SELECT s.id FROM lhs q, rhs s WHERE intersects(s.lower, s.upper, q.lower, q.upper)", nil)
	if err != nil {
		t.Fatal(err)
	}
	for rows2.Next() {
	}
	if st := rows2.Stats(); st.SweepSortRows == 0 {
		t.Fatal("ritree feeds reported zero sort rows")
	}
	rows2.Close()
}

func TestMergeJoinMetricsFamilies(t *testing.T) {
	db, _, _ := mergeJoinDB(t, AccessMethodHINT, 50)
	before := db.Metrics()
	rows, err := db.Query(context.Background(),
		"SELECT s.id FROM lhs q, rhs s WHERE allen_during(s.lower, s.upper, q.lower, q.upper)", nil)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	d := db.Metrics().Sub(before)
	if d.Counter("sql.join.merge") != 1 {
		t.Fatalf("sql.join.merge delta = %d", d.Counter("sql.join.merge"))
	}
	if d.Counter("sql.join_sweep.pairs") <= 0 {
		t.Fatalf("sql.join_sweep.pairs delta = %d", d.Counter("sql.join_sweep.pairs"))
	}
	if h, ok := db.Metrics().Histograms["sql.latency.join"]; !ok || h.Count == 0 {
		t.Fatalf("sql.latency.join histogram missing or empty: %+v", h)
	}
}

func TestMergeJoinSnapshotCursorUnderWrites(t *testing.T) {
	// A streaming merge-join cursor over HINT's snapshot ordered scans
	// must not see rows committed after Query, and concurrent inserts
	// must not corrupt the sweep.
	db, _, rhs := mergeJoinDB(t, AccessMethodHINT, 80)
	rows, err := db.Query(context.Background(),
		"SELECT s.id, q.id FROM lhs q, rhs s WHERE intersects(s.lower, s.upper, q.lower, q.upper) ORDER BY 1, 2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no first row: %v", rows.Err())
	}
	// Intersects everything; must stay invisible to the open cursor.
	if err := rhs.Insert(NewInterval(0, 1000), 424242); err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		if rows.Row()[0] == 424242 {
			t.Fatal("cursor saw a row committed after Query")
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	// A fresh statement sees it.
	r, err := db.Exec("SELECT count(*) FROM rhs WHERE id = 424242", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0] != 1 {
		t.Fatalf("new row invisible to a fresh statement: %v", r.Rows)
	}
}

func TestMergeJoinGroupByTopKEndToEnd(t *testing.T) {
	// The new sinks compose over the merge join through the public API:
	// per-subject intersection counts, top-k by count.
	db, _, _ := mergeJoinDB(t, AccessMethodHINT, 60)
	r, err := db.Exec("SELECT s.id, count(*) c FROM lhs q, rhs s "+
		"WHERE intersects(s.lower, s.upper, q.lower, q.upper) GROUP BY s.id ORDER BY c DESC, 1 LIMIT 5", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("top-5 groups = %d rows", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i][1] > r.Rows[i-1][1] {
			t.Fatalf("counts not descending: %v", r.Rows)
		}
	}
	plan, err := db.Exec(fmt.Sprintf("EXPLAIN SELECT s.id, count(*) c FROM lhs q, rhs s "+
		"WHERE intersects(s.lower, s.upper, q.lower, q.upper) GROUP BY s.id ORDER BY c DESC LIMIT %d", 5), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SORT TOP-K 5", "HASH GROUP BY", "INTERVAL MERGE JOIN (INTERSECTS)"} {
		if !strings.Contains(plan.Plan, want) {
			t.Fatalf("plan missing %q:\n%s", want, plan.Plan)
		}
	}
}
