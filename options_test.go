package ritree

import (
	"path/filepath"
	"strings"
	"testing"

	"ritree/internal/hint"
	ritcore "ritree/internal/ritree"
	"ritree/internal/sqldb"
)

// backingSharded reaches the HINT behind a collection's access-method
// index (test-only observability).
func backingSharded(t *testing.T, db *DB, name string) *hint.Sharded {
	t.Helper()
	ci, ok := db.eng.CustomIndexByName(sqldb.CollectionIndexName(name))
	if !ok {
		t.Fatalf("collection %s has no attached index", name)
	}
	b, ok := ci.(interface{ BackingIndex() *hint.Sharded })
	if !ok {
		t.Fatalf("collection %s index %T exposes no BackingIndex", name, ci)
	}
	return b.BackingIndex()
}

func TestCollectionOptionsConfigureHINT(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("tuned",
		AccessMethod(AccessMethodHINTSharded), WithHINTParams(24, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(10, 20), 1); err != nil {
		t.Fatal(err)
	}
	ix := backingSharded(t, db, "tuned")
	if ix.Shards() != 4 {
		t.Fatalf("Shards = %d, want 4", ix.Shards())
	}
	if ix.Bits() < 24 {
		t.Fatalf("Bits = %d, want >= 24", ix.Bits())
	}
	// Unknown and malformed parameters are rejected, not ignored.
	if _, err := db.CreateCollection("bad1",
		AccessMethod(AccessMethodHINT), WithMethodParam("bitz", "20")); err == nil ||
		!strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("typo parameter = %v, want unknown-parameter error", err)
	}
	if _, err := db.CreateCollection("bad2",
		AccessMethod(AccessMethodHINT), WithMethodParam("bits", "lots")); err == nil {
		t.Fatal("malformed bits value accepted")
	}
}

func TestCollectionOptionsPersistAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tuned.pages")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("tuned",
		AccessMethod(AccessMethodHINTSharded), WithHINTParams(24, 4))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(10, 20), 1); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	ix := backingSharded(t, db2, "tuned")
	if ix.Shards() != 4 || ix.Bits() < 24 {
		t.Fatalf("reopened geometry: shards=%d bits=%d, want 4 / >=24 (params not persisted?)",
			ix.Shards(), ix.Bits())
	}
	c2, err := db2.Collection("tuned")
	if err != nil {
		t.Fatal(err)
	}
	ids, err := c2.Intersecting(NewInterval(15, 16))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("reopened query = %v", ids)
	}
}

func TestCreateCollectionWithClauseSQL(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE COLLECTION cx USING hint_sharded WITH (bits = 22, shards = 3)", nil); err != nil {
		t.Fatal(err)
	}
	ix := backingSharded(t, db, "cx")
	if ix.Shards() != 3 || ix.Bits() < 22 {
		t.Fatalf("WITH clause geometry: shards=%d bits=%d", ix.Shards(), ix.Bits())
	}
	if _, err := db.Exec("CREATE COLLECTION cy USING hint WITH (bits = 9999)", nil); err == nil {
		t.Fatal("out-of-range bits accepted")
	}
}

func TestRITreeSkeletonParam(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("sk", WithMethodParam("skeleton", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(5, 9), 1); err != nil {
		t.Fatal(err)
	}
	ci, _ := db.eng.CustomIndexByName(sqldb.CollectionIndexName("sk"))
	bt, ok := ci.(interface{ BackingTree() *ritcore.Tree })
	if !ok {
		t.Fatalf("no BackingTree on %T", ci)
	}
	if bt.BackingTree().SkeletonSize() < 0 {
		t.Fatal("skeleton=1 did not materialize the backbone")
	}
	if _, err := db.CreateCollection("sk2", WithMethodParam("skeleton", "maybe")); err == nil {
		t.Fatal("bad skeleton value accepted")
	}
}
