package ritree

import (
	"context"
	"fmt"
	"iter"
	"slices"
	"strings"

	"ritree/internal/interval"
	"ritree/internal/rel"
	"ritree/internal/sqldb"
)

// Querier is the uniform interface every interval collection satisfies,
// regardless of the access method serving it — DB collections on any
// registered indextype, the legacy RI-tree Index, and the main-memory
// HINT all answer the same queries the same way. Slice-returning methods
// report ids ascending; Scan streams without materializing and is the
// cancellable form.
type Querier interface {
	// Insert registers iv under id; duplicate (iv, id) pairs count
	// separately.
	Insert(iv Interval, id int64) error
	// Delete removes one registration of (iv, id), reporting whether it
	// existed.
	Delete(iv Interval, id int64) (bool, error)
	// BulkLoad inserts ivs[i] under ids[i] — the fast path for loading
	// large datasets.
	BulkLoad(ivs []Interval, ids []int64) error
	// Intersecting returns the ids of all intervals intersecting q,
	// ascending.
	Intersecting(q Interval) ([]int64, error)
	// IntersectingFunc streams the ids of intervals intersecting q in no
	// particular order; return false from fn to stop early.
	IntersectingFunc(q Interval, fn func(id int64) bool) error
	// CountIntersecting returns the number of intervals intersecting q.
	CountIntersecting(q Interval) (int64, error)
	// Stab returns the ids of all intervals containing the point p,
	// ascending.
	Stab(p int64) ([]int64, error)
	// Query returns the ids of all intervals i with "i r q" for any of
	// Allen's thirteen relations (paper §4.5), ascending.
	Query(r Relation, q Interval) ([]int64, error)
	// Scan streams the ids matching q (see Intersects, Stabbing, Related)
	// as a range-over-func iterator: breaking out of the loop stops the
	// scan, and ctx cancellation surfaces as the iterator's final error.
	Scan(ctx context.Context, q Query) iter.Seq2[int64, error]
	// Count returns the number of registered intervals.
	Count() int64
}

var (
	_ Querier = (*Collection)(nil)
	_ Querier = (*Index)(nil)
	_ Querier = (*HINT)(nil)
)

// Collection is one named interval collection of a DB: a base relation of
// (lower, upper, id) rows plus the access-method domain index serving its
// queries (paper §5 — the server "automatically triggers the maintenance
// and scan of custom indexes"). Query results stream through the access
// method and map row ids back to the base relation, exactly the paper's
// domain-index query shape.
//
// Methods are safe for concurrent use under the owning DB's lock: queries
// run concurrently with each other, mutations are exclusive. The
// now-relative intervals of §4.6 (Upper == NowMarker, SetNow) are served
// when the access method implements them (ritree); other methods reject
// such rows instead of silently mis-answering.
type Collection struct {
	db     *DB
	name   string
	method string
	tab    *rel.Table
	ci     sqldb.CustomIndex
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Method returns the name of the access method serving the collection.
func (c *Collection) Method() string { return c.method }

// Count returns the number of registered intervals.
func (c *Collection) Count() int64 {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	return c.tab.RowCount()
}

// String summarizes the collection.
func (c *Collection) String() string {
	return fmt.Sprintf("ritree.Collection{%s, method=%s, n=%d}", c.name, c.method, c.Count())
}

// Metrics returns this collection's access-method counters from the DB's
// metrics registry, keyed by bare metric name (the "index.<name>."
// family prefix stripped): RI-tree collections report queries,
// node_visits and scratch-pool reuse; HINT collections report queries,
// shard_scans, partitions visited/skipped and flat-vs-overlay run
// counts. Counters are cumulative since the index was attached.
func (c *Collection) Metrics() map[string]int64 {
	prefix := "index." + sqldb.CollectionIndexName(c.name) + "."
	out := make(map[string]int64)
	for name, v := range c.db.Metrics().Counters {
		if strings.HasPrefix(name, prefix) {
			out[strings.TrimPrefix(name, prefix)] = v
		}
	}
	return out
}

func (c *Collection) checkInsert(iv Interval) error {
	if !iv.Valid() && iv.Upper != Infinity && iv.Upper != NowMarker {
		return fmt.Errorf("ritree: invalid interval %v", iv)
	}
	if iv.Upper == NowMarker {
		if _, ok := c.ci.(sqldb.NowKeeper); !ok {
			return fmt.Errorf("ritree: access method %q does not support now-relative intervals (§4.6); use a collection with the ritree method", c.method)
		}
	}
	return nil
}

// Insert registers iv under id.
func (c *Collection) Insert(iv Interval, id int64) error {
	if err := c.checkInsert(iv); err != nil {
		return err
	}
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	_, err := c.db.eng.InsertRow(c.name, []int64{iv.Lower, iv.Upper, id})
	return err
}

// InsertInfinite registers [lower, ∞) under id.
func (c *Collection) InsertInfinite(lower, id int64) error {
	return c.Insert(NewInterval(lower, Infinity), id)
}

// InsertNow registers the now-relative interval [lower, now] under id
// (§4.6). Only access methods implementing the now capability accept it.
func (c *Collection) InsertNow(lower, id int64) error {
	return c.Insert(Interval{Lower: lower, Upper: NowMarker}, id)
}

// BulkLoad inserts ivs[i] under ids[i] through the access method's bulk
// path (tightly packed relational indexes, flat HINT layout).
func (c *Collection) BulkLoad(ivs []Interval, ids []int64) error {
	if len(ivs) != len(ids) {
		return fmt.Errorf("ritree: BulkLoad got %d intervals, %d ids", len(ivs), len(ids))
	}
	for _, iv := range ivs {
		if err := c.checkInsert(iv); err != nil {
			return err
		}
	}
	rows := make([][]int64, len(ivs))
	for i, iv := range ivs {
		rows[i] = []int64{iv.Lower, iv.Upper, ids[i]}
	}
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	_, err := c.db.eng.BulkInsert(c.name, rows)
	return err
}

// IntervalRow is one (interval, id) pair for InsertMany.
type IntervalRow struct {
	Interval Interval
	ID       int64
}

// InsertMany registers every row in one batch: one engine lock, one heap
// append per row, and one bulk maintenance pass per domain index (the
// BulkMaintainer capability — the RI-tree rebuilds its composite indexes
// tightly packed, HINT compacts once), instead of paying the statement
// overhead row by row. Like Insert, the whole batch is validated first;
// a refused batch leaves the collection unchanged.
func (c *Collection) InsertMany(rows []IntervalRow) error {
	if len(rows) == 0 {
		return nil
	}
	for _, r := range rows {
		if err := c.checkInsert(r.Interval); err != nil {
			return err
		}
	}
	raw := make([][]int64, len(rows))
	for i, r := range rows {
		raw[i] = []int64{r.Interval.Lower, r.Interval.Upper, r.ID}
	}
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	_, err := c.db.eng.BulkInsert(c.name, raw)
	return err
}

// Delete removes one registration of (iv, id), reporting whether it
// existed. The matching row is located through the access method's
// intersection scan — so a miss (deleting a pair that was never
// inserted) costs one index probe, not a table scan. Now-relative rows
// are the one shape the probe cannot locate (their effective extent is
// the method's clock, not their stored bounds); those take a heap scan.
func (c *Collection) Delete(iv Interval, id int64) (bool, error) {
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	var found rel.RowID
	ok := false
	match := func(rid rel.RowID, row []int64) bool {
		if row[0] == iv.Lower && row[1] == iv.Upper && row[2] == id {
			found, ok = rid, true
			return false
		}
		return true
	}
	switch {
	case iv.Upper == NowMarker:
		if err := c.tab.Scan(match); err != nil {
			return false, err
		}
	case iv.Valid():
		row := make([]int64, 3)
		err := c.ci.Scan(opIntersects, []int64{iv.Lower, iv.Upper}, func(rid rel.RowID) bool {
			if c.tab.GetRawInto(rid, row) != nil {
				return true
			}
			return match(rid, row)
		})
		if err != nil {
			return false, err
		}
	default:
		return false, nil // invalid interval: never inserted
	}
	if !ok {
		return false, nil
	}
	return true, c.db.eng.DeleteRowID(c.name, found)
}

// Operator names served by every interval indextype.
const (
	opIntersects    = "intersects"
	opContainsPoint = "contains_point"
)

// intersectingFuncLocked streams ids of intervals intersecting q through
// the access method, mapping row ids to the base relation. Caller holds
// the DB lock (read or write).
func (c *Collection) intersectingFuncLocked(q Interval, fn func(id int64) bool) error {
	row := make([]int64, 3)
	return c.ci.Scan(opIntersects, []int64{q.Lower, q.Upper}, func(rid rel.RowID) bool {
		if c.tab.GetRawInto(rid, row) != nil {
			return true
		}
		return fn(row[2])
	})
}

// queryRelationFuncLocked streams ids with "i r q": the access method
// runs the generating intersection query of the predicate and the exact
// relation filters the candidate rows (paper §4.5, uniform across access
// methods). Caller holds the DB lock.
func (c *Collection) queryRelationFuncLocked(r Relation, q Interval, fn func(id int64) bool) error {
	if !q.Valid() {
		return fmt.Errorf("ritree: invalid query interval %v", q)
	}
	region, ok := interval.GeneratingRegion(r, q)
	if !ok {
		return nil
	}
	now := int64(0)
	if nk, isNow := c.ci.(sqldb.NowKeeper); isNow {
		now = nk.Now()
	}
	row := make([]int64, 3)
	return c.ci.Scan(opIntersects, []int64{region.Lower, region.Upper}, func(rid rel.RowID) bool {
		if c.tab.GetRawInto(rid, row) != nil {
			return true
		}
		iv := NewInterval(row[0], row[1])
		if iv.Upper == NowMarker {
			iv.Upper = now
			if !iv.Valid() {
				return true // born in the future of the evaluation time
			}
		}
		if r.Holds(iv, q) {
			return fn(row[2])
		}
		return true
	})
}

// IntersectingFunc streams the ids of intervals intersecting q in no
// particular order; return false from fn to stop early. fn runs under the
// DB read lock and must not call mutating methods.
func (c *Collection) IntersectingFunc(q Interval, fn func(id int64) bool) error {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	return c.intersectingFuncLocked(q, fn)
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (c *Collection) Intersecting(q Interval) ([]int64, error) {
	var ids []int64
	if err := c.IntersectingFunc(q, func(id int64) bool { ids = append(ids, id); return true }); err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// CountIntersecting returns the number of intervals intersecting q. It
// counts index hits directly, with no base-relation lookups; access
// methods with a parallel counting path (sqldb.OperatorCounter — the
// sharded HINT fans one goroutine per shard) are counted through it.
func (c *Collection) CountIntersecting(q Interval) (int64, error) {
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	if oc, ok := c.ci.(sqldb.OperatorCounter); ok {
		return oc.ScanCount(opIntersects, []int64{q.Lower, q.Upper})
	}
	var n int64
	err := c.ci.Scan(opIntersects, []int64{q.Lower, q.Upper}, func(rel.RowID) bool { n++; return true })
	return n, err
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (c *Collection) Stab(p int64) ([]int64, error) {
	return c.Intersecting(Point(p))
}

// Query returns the ids of all intervals i with "i r q" for any of
// Allen's thirteen relations, ascending.
func (c *Collection) Query(r Relation, q Interval) ([]int64, error) {
	c.db.mu.RLock()
	var ids []int64
	err := c.queryRelationFuncLocked(r, q, func(id int64) bool { ids = append(ids, id); return true })
	c.db.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	slices.Sort(ids)
	return ids, nil
}

// SetNow sets the evaluation time for now-relative intervals (§4.6) on
// access methods that keep one (ritree); others return an error.
func (c *Collection) SetNow(now int64) error {
	nk, ok := c.ci.(sqldb.NowKeeper)
	if !ok {
		return fmt.Errorf("ritree: access method %q has no now-relative clock", c.method)
	}
	c.db.mu.Lock()
	defer c.db.mu.Unlock()
	nk.SetNow(now)
	return nil
}

// Now returns the evaluation time for now-relative intervals, or false if
// the access method keeps none.
func (c *Collection) Now() (int64, bool) {
	nk, ok := c.ci.(sqldb.NowKeeper)
	if !ok {
		return 0, false
	}
	c.db.mu.RLock()
	defer c.db.mu.RUnlock()
	return nk.Now(), true
}

// scanStatement translates a streaming Query into the SQL statement and
// binds serving it — Collection.Scan runs over the engine's snapshot
// cursors, so it shares their operator rewrites (INTERSECTS,
// CONTAINS_POINT, ALLEN_*) and their no-lock streaming.
func (c *Collection) scanStatement(q Query) (string, map[string]interface{}, error) {
	switch q.kind {
	case queryIntersects:
		return "SELECT id FROM " + c.name + " WHERE intersects(lower, upper, :qlo, :qhi)",
			map[string]interface{}{"qlo": q.iv.Lower, "qhi": q.iv.Upper}, nil
	case queryStab:
		return "SELECT id FROM " + c.name + " WHERE contains_point(lower, upper, :p)",
			map[string]interface{}{"p": q.p}, nil
	case queryRelation:
		op := "allen_" + strings.ReplaceAll(q.r.String(), "-", "_")
		return "SELECT id FROM " + c.name + " WHERE " + op + "(lower, upper, :qlo, :qhi)",
			map[string]interface{}{"qlo": q.iv.Lower, "qhi": q.iv.Upper}, nil
	}
	return "", nil, errZeroQuery
}

// Scan streams the ids matching q as a cancellable range-over-func
// iterator. The scan holds NO lock: it reads from a page-store snapshot
// pinned when iteration starts, so concurrent writes — including
// mutating this collection from inside the loop — proceed freely and
// never shift the scan's results. A cancelled ctx surfaces as the
// iterator's final (0, err) pair.
func (c *Collection) Scan(ctx context.Context, q Query) iter.Seq2[int64, error] {
	return scanSeq(ctx, nil, nil, func(fn func(int64) bool) error {
		sql, binds, err := c.scanStatement(q)
		if err != nil {
			return err
		}
		rows, err := c.db.Query(ctx, sql, binds)
		if err != nil {
			return err
		}
		defer rows.Close()
		for rows.Next() {
			if !fn(rows.Row()[0]) {
				break
			}
		}
		return rows.Err()
	})
}
