// Command riserver serves one ritree database over TCP using the wire
// protocol in internal/wire, so any Go program can reach the full SQL
// surface — DDL, DML with binds, the ALLEN_* interval operators,
// transactions, streaming SELECT cursors — through database/sql with the
// ritree/driver package:
//
//	riserver [-listen 127.0.0.1:7432] [-db file.pages] [-metrics :7433]
//
//	db, _ := sql.Open("ritree", "tcp://127.0.0.1:7432")
//
// With -db the database is file-backed and write-ahead logged exactly
// like ritree.Open; without it the server hosts a fresh in-memory
// database. -metrics mounts the DB's observability handler (/metrics,
// /debug/vars, /debug/pprof) on a second listener; the snapshot includes
// the server's own families — server.connections, server.sessions.active,
// server.bytes.in/out, and per-message-type latency histograms
// (server.latency.query, .fetch, ...) — alongside sql.*, wal.* and
// pagestore.*.
//
// SIGINT/SIGTERM shut down gracefully: the listener closes, sessions
// finish their in-flight request and are drained (open cursors released,
// in-flight transactions rolled back), and the database — including its
// WAL — is closed before the process exits. -drain-timeout bounds the
// wait before remaining connections are severed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ritree"
	"ritree/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7432", "address to serve the wire protocol on")
	dbPath := flag.String("db", "", "page file to open or create (default: in-memory)")
	metricsAddr := flag.String("metrics", "", "address for the metrics/debug HTTP handler (default: disabled)")
	planCache := flag.Int("plan-cache", -1, "plan cache size in entries, 0 disables (default: engine default)")
	slow := flag.Duration("slow", 0, "slow-query capture threshold (default: disabled)")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown wait before severing connections")
	flag.Parse()

	var db *ritree.DB
	var err error
	if *dbPath == "" {
		db, err = ritree.OpenMemory()
	} else {
		db, err = ritree.Open(*dbPath)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "riserver:", err)
		os.Exit(1)
	}
	if *planCache >= 0 {
		db.SetPlanCacheSize(*planCache)
	}
	if *slow > 0 {
		db.SetSlowQueryThreshold(*slow)
	}

	if *metricsAddr != "" {
		msrv := &http.Server{Addr: *metricsAddr, Handler: db.MetricsHandler()}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("riserver: metrics listener: %v", err)
			}
		}()
		log.Printf("riserver: metrics on http://%s/metrics", *metricsAddr)
	}

	srv := server.New(db, server.Options{Logf: server.StdLogf})

	// Graceful shutdown: drain sessions, then close the DB (and its WAL).
	done := make(chan error, 1)
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("riserver: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		err := srv.Shutdown(ctx)
		if cerr := db.Close(); err == nil {
			err = cerr
		}
		done <- err
	}()

	log.Printf("riserver: serving %s on %s", storageDesc(*dbPath), *listen)
	if err := srv.ListenAndServe(*listen); err != nil {
		fmt.Fprintln(os.Stderr, "riserver:", err)
		os.Exit(1)
	}
	if err := <-done; err != nil {
		fmt.Fprintln(os.Stderr, "riserver:", err)
		os.Exit(1)
	}
}

func storageDesc(path string) string {
	if path == "" {
		return "in-memory database"
	}
	return path
}
