// Command risql is an interactive SQL shell over the reproduction's
// embedded relational engine — handy for poking at the RI-tree's relations
// the way the paper's DBA would through SQL*Plus.
//
//	risql [-db file.pages]
//
// The session pre-registers the ritree and hint indextypes, so the §5
// path works end to end with either access method — the disk-relational
// RI-tree or the main-memory HINT:
//
//	sql> CREATE TABLE resv (room int, arrival int, departure int);
//	sql> CREATE INDEX resv_iv ON resv (arrival, departure) INDEXTYPE IS ritree;
//	sql> CREATE INDEX resv_mm ON resv (arrival, departure) INDEXTYPE IS hint;
//	sql> INSERT INTO resv VALUES (1, 10, 20);
//	sql> SELECT room FROM resv WHERE intersects(arrival, departure, 15, 18);
//	sql> EXPLAIN SELECT room FROM resv WHERE intersects(arrival, departure, 15, 18);
//
// Meta commands: \tables, \stats, \reset (zero I/O counters), \q.
// Statements end with a semicolon and may span lines. Bind variables are
// not available in the shell; inline the values.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"ritree/internal/hint"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/ritree"
	"ritree/internal/sqldb"
)

func main() {
	dbPath := flag.String("db", "", "page file to open or create (default: in-memory)")
	flag.Parse()

	var st *pagestore.Store
	var db *rel.DB
	var err error
	if *dbPath == "" {
		st = pagestore.NewMem(pagestore.Options{})
		db, err = rel.CreateDB(st)
	} else {
		var be *pagestore.FileBackend
		be, err = pagestore.OpenFileBackend(*dbPath, pagestore.DefaultPageSize)
		if err == nil {
			st, err = pagestore.New(be, pagestore.Options{})
		}
		if err == nil {
			if st.NumAllocated() == 0 {
				db, err = rel.CreateDB(st)
			} else {
				db, err = rel.OpenDB(st, 1)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "risql:", err)
		os.Exit(1)
	}
	defer db.Close()

	eng := sqldb.NewEngine(db)
	ritree.RegisterIndexType(eng)
	hint.RegisterIndexType(eng)

	fmt.Println("risql — SQL shell over the RI-tree reproduction engine")
	fmt.Println(`type SQL ending with ';', or \tables \stats \reset \q`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			switch trimmed {
			case `\q`, `\quit`:
				return
			case `\tables`:
				for _, t := range db.Tables() {
					tab, _ := db.Table(t)
					fmt.Printf("  %-24s %8d rows, columns %v\n", t, tab.RowCount(), tab.Schema().Columns)
				}
			case `\stats`:
				s := db.Stats()
				fmt.Printf("  logical reads:   %d\n  physical reads:  %d\n  physical writes: %d\n",
					s.LogicalReads, s.PhysicalReads, s.PhysicalWrites)
			case `\reset`:
				db.ResetStats()
				fmt.Println("  counters zeroed")
			default:
				fmt.Println(`  unknown command; try \tables \stats \reset \q`)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		stmt := buf.String()
		buf.Reset()
		runStatement(eng, stmt)
		prompt()
	}
}

func runStatement(eng *sqldb.Engine, stmt string) {
	res, err := eng.Exec(stmt, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	switch {
	case res.Plan != "":
		fmt.Print(res.Plan)
	case res.Cols != nil:
		for i, c := range res.Cols {
			if i > 0 {
				fmt.Print("  ")
			}
			fmt.Printf("%-12s", c)
		}
		fmt.Println()
		for _, row := range res.Rows {
			for i, v := range row {
				if i > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%-12d", v)
			}
			fmt.Println()
		}
		fmt.Printf("(%d rows)\n", len(res.Rows))
	default:
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
	}
}
