// Command risql is an interactive SQL shell over the reproduction's
// embedded relational engine — handy for poking at the RI-tree's relations
// the way the paper's DBA would through SQL*Plus.
//
//	risql [-db file.pages]
//
// The session pre-registers the ritree, hint and hint_sharded indextypes,
// so the §5 path works end to end with any access method — the
// disk-relational RI-tree or the main-memory HINT variants:
//
//	sql> CREATE TABLE resv (room int, arrival int, departure int);
//	sql> CREATE INDEX resv_iv ON resv (arrival, departure) INDEXTYPE IS ritree;
//	sql> CREATE INDEX resv_mm ON resv (arrival, departure) INDEXTYPE IS hint;
//	sql> INSERT INTO resv VALUES (1, 10, 20);
//	sql> SELECT room FROM resv WHERE intersects(arrival, departure, 15, 18);
//	sql> EXPLAIN SELECT room FROM resv WHERE intersects(arrival, departure, 15, 18);
//
// Named interval collections (the unified-API shape: a (lower, upper, id)
// relation plus its access-method domain index) are first-class
// statements:
//
//	sql> CREATE COLLECTION flights USING hint;
//	sql> INSERT INTO flights VALUES (10, 20, 1);
//	sql> SELECT id FROM flights WHERE intersects(lower, upper, 15, 18);
//	sql> DROP COLLECTION flights;
//
// \collections lists them with their access methods.
//
// Reopening a persisted database (risql -db f.pages on an existing file)
// re-attaches every domain index recorded in the catalog before the first
// prompt: ritree indexes reopen their hidden relations (verified against
// the base table), hint indexes rebuild from the heap. A definition whose
// indextype cannot be attached aborts the session rather than silently
// serving DML without index maintenance.
//
// SELECT results stream: rows print as the executor pipeline produces
// them (a LIMIT stops the underlying index scan early). The §4.5
// fine-grained operators are available as ALLEN_<relation>(lower, upper,
// qlo, qhi) on any access method; \help lists all thirteen.
//
// Transactions work as in the engine: BEGIN; buffers INSERT/DELETE and
// answers reads from the BEGIN snapshot, COMMIT; applies them with
// first-committer-wins conflict detection, ROLLBACK; discards.
// \begin, \commit and \rollback are shorthands for the SQL statements.
// File-backed sessions (-db) write ahead to a <file>.wal sidecar exactly
// like the public API, so a crashed session replays its committed tail on
// the next open.
//
// Meta commands: \tables, \collections, \begin/\commit/\rollback,
// \stats, \reset (zero I/O counters), \metrics (the session's metrics
// registry: executor counters, per-statement-kind latency histograms,
// page-store I/O, WAL commit/fsync and transaction conflict counters
// (wal.*, txn.*), and each domain index's family), \slow [dur] (arm the
// slow-query trace log at the given threshold, or drain and print the
// captured statements with their operator stats), \help (operator
// table), \q.
// EXPLAIN ANALYZE SELECT ... executes the statement and prints the
// per-operator tree annotated with rows, leaf rows, probes and wall
// time.
// Statements end with a semicolon and may span lines; several statements
// may share a line. Bind variables are not available in the shell; inline
// the values.
package main

import (
	"bufio"
	"bytes"
	"context"
	"database/sql"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	ritreedriver "ritree/driver"
	"ritree/internal/hint"
	"ritree/internal/obs"
	"ritree/internal/pagestore"
	"ritree/internal/rel"
	"ritree/internal/ritree"
	"ritree/internal/sqldb"
)

func main() {
	dbPath := flag.String("db", "", "page file to open or create (default: in-memory)")
	connect := flag.String("connect", "", "connect to a riserver (tcp://host:port) instead of opening a local database")
	repair := flag.Bool("repair", false, "skip domain-index auto-attach on open (recovery mode: DML will NOT maintain domain indexes; DROP INDEX broken definitions, then reopen normally)")
	flag.Parse()

	if *connect != "" {
		if err := runRemote(*connect); err != nil {
			fmt.Fprintln(os.Stderr, "risql:", err)
			os.Exit(1)
		}
		return
	}

	var st *pagestore.Store
	var db *rel.DB
	var err error
	reopened := false
	if *dbPath == "" {
		st = pagestore.NewMem(pagestore.Options{})
		db, err = rel.CreateDB(st)
	} else {
		var be *pagestore.FileBackend
		be, err = pagestore.OpenFileBackend(*dbPath, pagestore.DefaultPageSize)
		if err == nil {
			// Same durability wiring as the public DB API: a sidecar WAL
			// whose committed tail replays into the page file on open, so
			// a risql session survives a crash mid-commit.
			var wal *pagestore.FileWAL
			wal, err = pagestore.OpenFileWAL(*dbPath + ".wal")
			if err == nil {
				st, err = pagestore.New(be, pagestore.Options{WAL: wal})
			}
		}
		if err == nil {
			if st.NumAllocated() == 0 {
				db, err = rel.CreateDB(st)
			} else {
				db, err = rel.OpenDB(st, 1)
				reopened = true
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "risql:", err)
		os.Exit(1)
	}
	defer db.Close()

	// One metrics registry per session: page-store I/O, executor counters
	// and per-kind latency histograms, and each attached domain index's
	// family all publish into it (\metrics prints it, \slow arms the
	// slow-query trace log).
	reg := obs.NewRegistry()
	st.SetMetrics(reg, "pagestore")
	eng := sqldb.NewEngine(db)
	eng.SetMetricsRegistry(reg)
	ritree.RegisterIndexType(eng)
	hint.RegisterIndexType(eng)
	hint.RegisterShardedIndexType(eng, 0)
	switch {
	case reopened && *repair:
		fmt.Println("REPAIR MODE: domain indexes are NOT attached — DML will not maintain them.")
		fmt.Println("DROP INDEX the broken definitions below, then reopen without -repair:")
		for _, def := range db.CustomIndexes() {
			fmt.Printf("  %s (%s) on %s %v\n", def.Name, def.IndexType, def.Table, def.Columns)
		}
	case reopened:
		// Re-attach every domain index recorded in the catalog before any
		// statement runs: a session without them would silently skip index
		// maintenance and corrupt the persisted index storage.
		if err := eng.AttachCatalogIndexes(); err != nil {
			fmt.Fprintln(os.Stderr, "risql:", err)
			fmt.Fprintln(os.Stderr, "risql: reopen with -repair to DROP INDEX the broken definition")
			os.Exit(1)
		}
		for _, def := range db.CustomIndexes() {
			fmt.Printf("attached domain index %s (%s) on %s %v\n",
				def.Name, def.IndexType, def.Table, def.Columns)
		}
	}

	fmt.Println("risql — SQL shell over the RI-tree reproduction engine")
	fmt.Println(`type SQL ending with ';', or \tables \collections \begin \commit \rollback \stats \metrics \slow \reset \help \q`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			cmd, arg := trimmed, ""
			if i := strings.IndexAny(trimmed, " \t"); i >= 0 {
				cmd, arg = trimmed[:i], strings.TrimSpace(trimmed[i:])
			}
			switch cmd {
			case `\q`, `\quit`:
				return
			case `\tables`:
				for _, t := range db.Tables() {
					tab, _ := db.Table(t)
					fmt.Printf("  %-24s %8d rows, columns %v\n", t, tab.RowCount(), tab.Schema().Columns)
				}
			case `\collections`:
				cols := eng.Collections()
				if len(cols) == 0 {
					fmt.Println("  (none — CREATE COLLECTION name USING method)")
				}
				for _, ci := range cols {
					rows := int64(0)
					if tab, err := db.Table(ci.Name); err == nil {
						rows = tab.RowCount()
					}
					fmt.Printf("  %-24s %-14s %8d intervals\n", ci.Name, ci.Method, rows)
				}
			case `\stats`:
				s := db.Stats()
				fmt.Printf("  logical reads:   %d\n  physical reads:  %d\n  physical writes: %d\n",
					s.LogicalReads, s.PhysicalReads, s.PhysicalWrites)
			case `\reset`:
				db.ResetStats()
				fmt.Println("  counters zeroed")
			case `\begin`, `\commit`, `\rollback`:
				// Passthrough to the SQL transaction statements, for
				// symmetry with other shells; BEGIN; / COMMIT; /
				// ROLLBACK; typed as SQL work identically.
				runStatement(eng, strings.ToUpper(cmd[1:])+";")
			case `\metrics`:
				printMetrics(reg)
			case `\slow`:
				runSlow(eng, arg)
			case `\help`:
				printHelp()
			default:
				fmt.Println(`  unknown command; try \tables \collections \begin \commit \rollback \stats \metrics \slow \reset \help \q`)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		// Execute statement by statement: split at each semicolon (outside
		// comments) and feed the remainder back into the buffer, so several
		// statements on one line run in order and a trailing comment does
		// not ride along into the executed text.
		for {
			stmt, rest, ok := splitStatement(buf.String())
			if !ok {
				break
			}
			buf.Reset()
			buf.WriteString(rest)
			if !blankSQL(strings.TrimSuffix(stmt, ";")) {
				runStatement(eng, stmt)
			}
		}
		if blankSQL(buf.String()) {
			buf.Reset()
		}
		prompt()
	}
}

// skipComment, when a -- line comment or /* block comment */ starts at
// s[i], returns the index just past it. unterminated reports a block
// comment with no closing */ (the caller keeps buffering input). The
// comment grammar mirrors the engine lexer's skipSpaceAndComments
// (internal/sqldb/lexer.go) and must be kept in step with it; the split
// is lenient where the lexer is strict (it must work on half-typed
// input), which is why it does not reuse the lexer directly. If the
// dialect ever gains string literals, quote state must be added here too.
func skipComment(s string, i int) (next int, isComment, unterminated bool) {
	switch {
	case s[i] == '-' && i+1 < len(s) && s[i+1] == '-':
		for i < len(s) && s[i] != '\n' {
			i++
		}
		return i, true, false
	case s[i] == '/' && i+1 < len(s) && s[i+1] == '*':
		end := strings.Index(s[i+2:], "*/")
		if end < 0 {
			return len(s), true, true
		}
		return i + 2 + end + 2, true, false
	}
	return i, false, false
}

// splitStatement splits s at the first semicolon that is not inside a
// comment, returning the statement text (semicolon included) and the
// remainder.
func splitStatement(s string) (stmt, rest string, ok bool) {
	for i := 0; i < len(s); {
		if j, isC, unterm := skipComment(s, i); isC {
			if unterm {
				return "", "", false
			}
			i = j
			continue
		}
		if s[i] == ';' {
			return s[:i+1], s[i+1:], true
		}
		i++
	}
	return "", "", false
}

// blankSQL reports whether s holds no statement text: only whitespace and
// complete comments (e.g. the tail left after "SELECT 1; -- note"). An
// unterminated block comment is not blank — it is still being buffered.
func blankSQL(s string) bool {
	for i := 0; i < len(s); {
		if j, isC, unterm := skipComment(s, i); isC {
			if unterm {
				return false
			}
			i = j
			continue
		}
		if s[i] != ' ' && s[i] != '\t' && s[i] != '\n' && s[i] != '\r' {
			return false
		}
		i++
	}
	return true
}

func runStatement(eng *sqldb.Engine, stmt string) {
	// SELECTs stream through the cursor: each row prints as the pipeline
	// produces it, so a long scan shows progress immediately and a LIMIT
	// stops the underlying index scan early.
	if st, err := sqldb.Parse(stmt); err == nil {
		if _, isSelect := st.(*sqldb.SelectStmt); isSelect {
			rows, err := eng.Query(context.Background(), stmt, nil)
			if err != nil {
				fmt.Println("error:", err)
				return
			}
			defer rows.Close()
			for i, c := range rows.Columns() {
				if i > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%-12s", c)
			}
			fmt.Println()
			n := 0
			for rows.Next() {
				for i, v := range rows.Row() {
					if i > 0 {
						fmt.Print("  ")
					}
					fmt.Printf("%-12d", v)
				}
				fmt.Println()
				n++
			}
			if err := rows.Err(); err != nil {
				fmt.Println("error:", err)
				return
			}
			fmt.Printf("(%d rows)\n", n)
			return
		}
	}
	res, err := eng.Exec(stmt, nil)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	switch {
	case res.Plan != "":
		fmt.Print(res.Plan)
	default:
		fmt.Printf("ok (%d rows affected)\n", res.Affected)
	}
}

// printMetrics dumps the session's metrics registry (\metrics): counters
// sorted by name, then the latency histograms with their quantiles.
func printMetrics(reg *obs.Registry) {
	s := reg.Snapshot()
	if len(s.Counters) == 0 && len(s.Histograms) == 0 {
		fmt.Println("  (no metrics recorded yet)")
		return
	}
	for _, name := range s.CounterNames() {
		fmt.Printf("  %-40s %12d\n", name, s.Counters[name])
	}
	hists := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hists = append(hists, name)
	}
	sort.Strings(hists)
	for _, name := range hists {
		h := s.Histograms[name]
		fmt.Printf("  %-40s count=%d p50=%s p95=%s p99=%s max=%s\n",
			name, h.Count, time.Duration(h.P50), time.Duration(h.P95),
			time.Duration(h.P99), time.Duration(h.Max))
	}
}

// runSlow implements \slow: with a duration argument it arms the
// slow-query threshold; bare it drains and prints the captured ring.
func runSlow(eng *sqldb.Engine, arg string) {
	if arg != "" {
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			fmt.Printf("  bad duration %q; try \\slow 100ms (0 disables)\n", arg)
			return
		}
		eng.SetSlowQueryThreshold(d)
		if d == 0 {
			fmt.Println("  slow-query capture disabled")
		} else {
			fmt.Printf("  capturing statements taking >= %s\n", d)
		}
		return
	}
	slow := eng.SlowQueries()
	if len(slow) == 0 {
		if eng.SlowQueryThreshold() == 0 {
			fmt.Println(`  (capture disarmed — \slow 100ms to arm)`)
		} else {
			fmt.Println("  (no slow queries captured)")
		}
		return
	}
	for _, sq := range slow {
		fmt.Printf("  [%s] %s  binds=%d  leaf=%d rows=%d\n    %s\n",
			sq.When.Format("15:04:05.000"), sq.Duration, sq.Binds,
			sq.Stats.LeafRows, sq.Stats.RowsOut, strings.TrimSpace(sq.SQL))
		if sq.Plan.Label != "" {
			for _, line := range strings.Split(strings.TrimRight(sq.Plan.Render(), "\n"), "\n") {
				fmt.Println("    " + line)
			}
		}
	}
}

// printHelp lists the interval operators the engine serves (\help).
func printHelp() {
	fmt.Println("  interval operators (served by a domain index / collection access method):")
	fmt.Println("    INTERSECTS(lower, upper, qlo, qhi)      rows whose interval intersects [qlo, qhi]")
	fmt.Println("    CONTAINS_POINT(lower, upper, p)         rows whose interval contains p")
	fmt.Println("  Allen §4.5 operators, ALLEN_<relation>(lower, upper, qlo, qhi) — row interval")
	fmt.Println("  <relation> query interval; planned as an INTERSECTS scan over the relation's")
	fmt.Println("  generating region plus an exact residual, on every access method:")
	names := sqldb.AllenOperatorNames()
	for i := 0; i < len(names); i += 4 {
		end := i + 4
		if end > len(names) {
			end = len(names)
		}
		fmt.Print("   ")
		for _, n := range names[i:end] {
			fmt.Printf(" %-22s", strings.ToUpper(n))
		}
		fmt.Println()
	}
	fmt.Println("  SELECT supports DISTINCT, ORDER BY, LIMIT, UNION ALL, TABLE(:bind) sources;")
	fmt.Println("  CREATE COLLECTION name USING method WITH (key = value, ...) tunes the access")
	fmt.Println("  method (hint: bits, levels, shards; ritree: skeleton).")
	fmt.Println("  transactions: BEGIN; buffers INSERT/DELETE, reads answer from the BEGIN")
	fmt.Println("  snapshot; COMMIT; applies them unless another writer changed a touched table")
	fmt.Println("  first (first committer wins — the COMMIT errors and applies nothing);")
	fmt.Println("  ROLLBACK; discards. \\begin \\commit \\rollback are shorthands. DDL and")
	fmt.Println("  CREATE/DROP COLLECTION are rejected inside a transaction. The wal.* and")
	fmt.Println("  txn.* families in \\metrics trace commits, fsync batching and conflicts.")
}

// runRemote is the -connect mode: the whole session runs through the
// database/sql driver against a riserver, pinned to one connection so
// BEGIN/COMMIT state lives in one server session. The local-only meta
// commands (\tables, \stats, \slow, \reset) are unavailable; \metrics
// fetches the server's registry snapshot over the wire.
func runRemote(dsn string) error {
	db, err := sql.Open("ritree", dsn)
	if err != nil {
		return err
	}
	defer db.Close()
	ctx := context.Background()
	conn, err := db.Conn(ctx)
	if err != nil {
		return err
	}
	defer conn.Close()
	if err := conn.PingContext(ctx); err != nil {
		return err
	}

	fmt.Printf("risql — connected to %s\n", dsn)
	fmt.Println(`type SQL ending with ';', or \begin \commit \rollback \metrics \help \q`)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("  -> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, `\`) {
			cmd, _ := trimmed, ""
			if i := strings.IndexAny(trimmed, " \t"); i >= 0 {
				cmd = trimmed[:i]
			}
			switch cmd {
			case `\q`, `\quit`:
				return nil
			case `\begin`, `\commit`, `\rollback`:
				runRemoteStatement(ctx, conn, strings.ToUpper(cmd[1:])+";")
			case `\metrics`:
				printRemoteMetrics(conn)
			case `\help`:
				printHelp()
			case `\tables`, `\collections`, `\stats`, `\slow`, `\reset`:
				fmt.Println(`  not available over a connection (server-local); use \metrics`)
			default:
				fmt.Println(`  unknown command; try \begin \commit \rollback \metrics \help \q`)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		for {
			stmt, rest, ok := splitStatement(buf.String())
			if !ok {
				break
			}
			buf.Reset()
			buf.WriteString(rest)
			if !blankSQL(strings.TrimSuffix(stmt, ";")) {
				runRemoteStatement(ctx, conn, stmt)
			}
		}
		if blankSQL(buf.String()) {
			buf.Reset()
		}
		prompt()
	}
	return sc.Err()
}

// runRemoteStatement executes one statement over the pinned connection.
// SELECTs (and EXPLAIN, which the driver answers as a "plan" text
// column) stream through QueryContext; everything else goes through
// ExecContext.
func runRemoteStatement(ctx context.Context, conn *sql.Conn, stmt string) {
	isCursor := false
	if st, err := sqldb.Parse(stmt); err == nil {
		switch st.(type) {
		case *sqldb.SelectStmt, *sqldb.ExplainStmt:
			isCursor = true
		}
	}
	if !isCursor {
		res, err := conn.ExecContext(ctx, stmt)
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		n, _ := res.RowsAffected()
		fmt.Printf("ok (%d rows affected)\n", n)
		return
	}
	rows, err := conn.QueryContext(ctx, stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, c := range cols {
		if i > 0 {
			fmt.Print("  ")
		}
		fmt.Printf("%-12s", c)
	}
	fmt.Println()
	vals := make([]interface{}, len(cols))
	ptrs := make([]interface{}, len(cols))
	for i := range vals {
		ptrs[i] = &vals[i]
	}
	n := 0
	for rows.Next() {
		if err := rows.Scan(ptrs...); err != nil {
			fmt.Println("error:", err)
			return
		}
		for i, v := range vals {
			if i > 0 {
				fmt.Print("  ")
			}
			switch x := v.(type) {
			case int64:
				fmt.Printf("%-12d", x)
			case string:
				fmt.Print(x)
			case []byte:
				fmt.Print(string(x))
			default:
				fmt.Printf("%-12v", x)
			}
		}
		fmt.Println()
		n++
	}
	if err := rows.Err(); err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("(%d rows)\n", n)
}

// printRemoteMetrics fetches the server's metrics snapshot through the
// driver's raw-connection hook and pretty-prints the JSON.
func printRemoteMetrics(conn *sql.Conn) {
	var js string
	err := conn.Raw(func(dc interface{}) error {
		mf, ok := dc.(ritreedriver.MetricsFetcher)
		if !ok {
			return fmt.Errorf("connection does not expose server metrics")
		}
		var merr error
		js, merr = mf.ServerMetrics()
		return merr
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, []byte(js), "  ", "  ") != nil {
		fmt.Println(js)
		return
	}
	fmt.Println("  " + pretty.String())
}
