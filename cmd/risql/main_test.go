package main

import "testing"

func TestSplitStatement(t *testing.T) {
	cases := []struct {
		in         string
		stmt, rest string
		ok         bool
	}{
		{"SELECT 1;\n", "SELECT 1;", "\n", true},
		{"SELECT 1; SELECT 2;\n", "SELECT 1;", " SELECT 2;\n", true},
		{"SELECT 1", "", "", false},
		{"-- c;omment\nSELECT 1;\n", "-- c;omment\nSELECT 1;", "\n", true},
		{"SELECT /* ; */ 1;\n", "SELECT /* ; */ 1;", "\n", true},
		{"SELECT /* unterminated ;\n", "", "", false},
		{"SELECT 1; -- trailing\n", "SELECT 1;", " -- trailing\n", true},
	}
	for _, c := range cases {
		stmt, rest, ok := splitStatement(c.in)
		if stmt != c.stmt || rest != c.rest || ok != c.ok {
			t.Errorf("splitStatement(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.in, stmt, rest, ok, c.stmt, c.rest, c.ok)
		}
	}
}

func TestBlankSQL(t *testing.T) {
	for _, s := range []string{"", "  \n\t", " -- note\n", "/* done */\n", "-- a\n-- b\n"} {
		if !blankSQL(s) {
			t.Errorf("blankSQL(%q) = false, want true", s)
		}
	}
	for _, s := range []string{"SELECT", " x -- note\n", "/* open", "1;"} {
		if blankSQL(s) {
			t.Errorf("blankSQL(%q) = true, want false", s)
		}
	}
}
