// Command ribench regenerates the tables and figures of the paper's
// experimental evaluation (§6) on the reproduction's own substrate, plus
// the RI-tree-vs-HINT main-memory comparison (experiment id "hint":
// RI-tree against the PR-1 HINT baseline and the optimized HINT), the
// HINT optimization-level ablation (experiment id "hintopt": unsorted
// buckets vs sorted subdivisions vs the flat cache-conscious layout vs
// the comparison-free geometry), the unified-interface comparison
// (experiment id "collections": every registered access method loaded and
// queried through the same collection code path the public DB/Collection
// API uses), and the persisted-domain-index reopen lifecycle (experiment
// id "reopen": catalog auto-attach cost per indextype on a file-backed
// database).
//
// Usage:
//
//	ribench -list
//	ribench -exp fig13
//	ribench -exp all -scale 0.1
//	ribench -exp fig14 -latency 200us -csv
//	ribench -exp hint -json
//	ribench -exp hintopt -json
//
// Every experiment prints a paper-style table; the notes under each table
// state the shape the paper reports, so the output is self-checking by
// eye. Absolute numbers differ from the 1998 Oracle/Pentium testbed — the
// shapes are the reproduction target (see EXPERIMENTS.md).
//
// -json emits each table as a JSON document whose "methods" array labels
// every access method with its storage regime (disk-relational vs
// main-memory), so recorded benchmark entries stay comparable across
// regimes.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ritree/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or 'all'")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.Float64("scale", 1.0, "database size multiplier (1.0 = paper scale)")
		latency = flag.Duration("latency", 0, "simulated disk latency per physical read during query phases (e.g. 200us)")
		seed    = flag.Int64("seed", 0, "workload seed (0 = default)")
		csv     = flag.Bool("csv", false, "also print CSV after each table")
		jsonOut = flag.Bool("json", false, "print each table as JSON (with storage-regime labels) instead of text")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.Experiments() {
			fmt.Println(id)
		}
		return
	}
	cfg := bench.Config{Scale: *scale, Latency: *latency, Seed: *seed}
	if !*quiet {
		cfg.Progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = bench.Experiments()
	}
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		table, err := bench.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ribench: %s: %v\n", id, err)
			os.Exit(1)
		}
		if *jsonOut {
			fmt.Println(table.JSON())
		} else {
			fmt.Println(table.String())
		}
		if *csv {
			fmt.Println(table.CSV())
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "[%s done in %v]\n", id, time.Since(t0).Round(time.Millisecond))
		}
	}
	if !*quiet && *exp == "all" {
		fmt.Fprintf(os.Stderr, "[all experiments done in %v]\n", time.Since(start).Round(time.Millisecond))
	}
}
