package ritree

import (
	"io"
	"os"
	"path/filepath"
	"testing"
)

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	in, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if _, err := io.Copy(out, in); err != nil {
		t.Fatal(err)
	}
}

// snapshotFiles copies the database file and its WAL sidecar as they sit
// on disk mid-session — the moment a crash would freeze — into dir,
// returning the copied database path.
func snapshotFiles(t *testing.T, path, dir string) string {
	t.Helper()
	crashed := filepath.Join(dir, "crashed.db")
	copyFile(t, path, crashed)
	copyFile(t, path+".wal", crashed+".wal")
	return crashed
}

// TestCrashRecovery kills the database (by copying its on-disk state
// while the session is still open, before any page writeback) and reopens
// the copy: the WAL replay must reconstruct every committed row, and the
// ritree access method's attach-time row-count and content-checksum
// verification must accept the recovered state.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("resv") // ritree: checksum-verified on attach
	if err != nil {
		t.Fatal(err)
	}
	const n = 300
	rows := make([]IntervalRow, n)
	for i := range rows {
		rows[i] = IntervalRow{NewInterval(int64(i), int64(i)+7), int64(i)}
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	// No Close, no Flush: everything committed lives in the WAL only.
	crashed := snapshotFiles(t, path, dir)

	rdb, err := Open(crashed)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer rdb.Close()
	if v := rdb.Metrics().Counters["wal.recovered_pages"]; v == 0 {
		t.Fatal("reopen did not replay any WAL pages — the test lost its premise")
	}
	rc, err := rdb.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if cnt := rc.Count(); cnt != n {
		t.Fatalf("recovered %d rows, want %d", cnt, n)
	}
	ids, err := rc.Intersecting(NewInterval(100, 110))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Intersecting(NewInterval(100, 110))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != len(want) {
		t.Fatalf("recovered query returned %d ids, live returned %d", len(ids), len(want))
	}
}

// TestCrashRecoveryTornTail cuts into the WAL's final commit (a crash
// between the log append and its fsync completing): the incomplete batch
// must be discarded atomically, leaving exactly the previous committed
// state — which the attach-time checksum verification again certifies.
func TestCrashRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "live.db")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	rows := make([]IntervalRow, n)
	for i := range rows {
		rows[i] = IntervalRow{NewInterval(int64(i), int64(i)+7), int64(i)}
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	// One more committed row, whose commit batch we will then tear.
	if err := c.Insert(NewInterval(1000, 1010), 9999); err != nil {
		t.Fatal(err)
	}
	crashed := snapshotFiles(t, path, dir)
	fi, err := os.Stat(crashed + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	// Truncate mid-record: the commit record is 5 bytes, so cutting 3
	// leaves the final batch without its commit.
	if err := os.Truncate(crashed+".wal", fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	rdb, err := Open(crashed)
	if err != nil {
		t.Fatalf("reopen with torn WAL tail: %v", err)
	}
	defer rdb.Close()
	rc, err := rdb.Collection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if cnt := rc.Count(); cnt != n {
		t.Fatalf("recovered %d rows, want %d (the torn batch dropped atomically)", cnt, n)
	}
	ids, err := rc.Intersecting(NewInterval(1000, 1010))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 0 {
		t.Fatalf("torn batch's row survived recovery: %v", ids)
	}
	// The recovered database accepts new writes and they are durable.
	if err := rc.Insert(NewInterval(2000, 2010), 7777); err != nil {
		t.Fatal(err)
	}
	if cnt := rc.Count(); cnt != n+1 {
		t.Fatalf("count after post-recovery insert = %d, want %d", cnt, n+1)
	}
}
