package ritree

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"ritree/internal/interval"
)

// The observability acceptance tests: EXPLAIN ANALYZE's per-operator
// counters, Rows.Stats/PlanStats, the DB metrics registry, and the
// slow-query ring must all agree with hand-computed work counts — on
// every access method, including a large collection where O(k) LIMIT
// behaviour is distinguishable from O(n).

// TestExplainAnalyzeLimitLargeCollection is the headline acceptance
// check: over a 100k-row collection, SELECT ... LIMIT 10 performs
// exactly 10 leaf-row fetches, and the three reporting surfaces —
// Rows.Stats(), Rows.PlanStats(), and the DB registry snapshot — all
// report that same number. EXPLAIN ANALYZE renders it per operator.
func TestExplainAnalyzeLimitLargeCollection(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("big", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	ivs := make([]Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := int64(i)
		ivs[i] = NewInterval(lo, lo+50)
		ids[i] = int64(i)
	}
	if err := c.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}

	const k = 10
	sql := fmt.Sprintf("SELECT id FROM big WHERE intersects(lower, upper, 50000, 50100) LIMIT %d", k)
	before := db.Metrics()
	rows, err := db.Query(context.Background(), sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for rows.Next() {
		got++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if got != k {
		t.Fatalf("LIMIT %d returned %d rows", k, got)
	}

	// Surface 1: cursor totals. Pure INTERSECTS has no residual filter,
	// so leaf rows == rows out == k exactly, with one index probe.
	want := ExecStats{LeafRows: k, RowsOut: k, IndexProbes: 1}
	if st := rows.Stats(); st != want {
		t.Fatalf("Rows.Stats() = %+v, want %+v", st, want)
	}

	// Surface 2: the per-operator tree. Root is the LIMIT node; its
	// single child is the domain-index scan carrying the leaf count.
	ps := rows.PlanStats()
	if ps.Label != fmt.Sprintf("LIMIT %d", k) || ps.RowsOut != k {
		t.Fatalf("plan root = %q rows=%d, want LIMIT %d rows=%d\n%s", ps.Label, ps.RowsOut, k, k, ps.Render())
	}
	if len(ps.Children) != 1 {
		t.Fatalf("plan root has %d children:\n%s", len(ps.Children), ps.Render())
	}
	scan := ps.Children[0]
	if scan.Label != "DOMAIN INDEX BIG$AM (INTERSECTS)" ||
		scan.LeafRows != k || scan.RowsOut != k || scan.Probes != 1 {
		t.Fatalf("scan node = %+v, want leaf=%d rows=%d probes=1", scan, k, k)
	}

	// Surface 3: the DB registry accumulated the same counters when the
	// cursor closed.
	delta := db.Metrics().Sub(before)
	if v := delta.Counter("sql.leaf_rows"); v != k {
		t.Fatalf("registry sql.leaf_rows delta = %d, want %d", v, k)
	}
	if v := delta.Counter("sql.rows_out"); v != k {
		t.Fatalf("registry sql.rows_out delta = %d, want %d", v, k)
	}
	if v := delta.Counter("sql.stmt.select"); v != 1 {
		t.Fatalf("registry sql.stmt.select delta = %d, want 1", v)
	}
	// The access method's own family counted the scan too.
	if v := delta.Counter("index.big$am.queries"); v != 1 {
		t.Fatalf("registry index.big$am.queries delta = %d, want 1 (have %v)", v, delta.CounterNames())
	}

	// EXPLAIN ANALYZE renders the same counters inline, with wall time.
	r, err := db.Exec("EXPLAIN ANALYZE "+sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		"SELECT STATEMENT (ANALYZED)",
		fmt.Sprintf("LIMIT %d (rows=%d", k, k),
		fmt.Sprintf("DOMAIN INDEX BIG$AM (INTERSECTS) (rows=%d leaf=%d probes=1", k, k),
	} {
		if !strings.Contains(r.Plan, wantLine) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", wantLine, r.Plan)
		}
	}
}

// TestExplainAnalyzeJoinCounters hand-computes every operator counter of
// a nested-loops join: a 3-row transient collection driving an index
// range scan over 20 groups x 5 rows. The inner side must be probed once
// per outer row (3 probes, 3 rebinds) and fetch exactly the 15 matching
// rows.
func TestExplainAnalyzeJoinCounters(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE data (grp int, val int)", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE INDEX dg ON data (grp, val)", nil); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 20; g++ {
		for v := 0; v < 5; v++ {
			if _, err := db.Exec("INSERT INTO data VALUES (:g, :v)",
				map[string]interface{}{"g": g, "v": g*100 + v}); err != nil {
				t.Fatal(err)
			}
		}
	}
	binds := map[string]interface{}{
		"groups": &Transient{Cols: []string{"grp"}, Rows: [][]int64{{3}, {7}, {15}}},
	}
	sql := "SELECT d.val FROM TABLE(:groups) g, data d WHERE d.grp = g.grp"

	rows, err := db.Query(context.Background(), sql, binds)
	if err != nil {
		t.Fatal(err)
	}
	out := 0
	for rows.Next() {
		out++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if out != 15 {
		t.Fatalf("join returned %d rows, want 15", out)
	}
	// Leaf rows: 3 from the collection iterator + 15 from the inner index
	// scans. One inner probe and one rebind per outer row.
	want := ExecStats{LeafRows: 18, RowsOut: 15, IndexProbes: 3, JoinRebinds: 3, JoinStrategy: "nested_loops"}
	if st := rows.Stats(); st != want {
		t.Fatalf("Rows.Stats() = %+v, want %+v", st, want)
	}

	ps := rows.PlanStats()
	if ps.Label != "NESTED LOOPS" || ps.RowsOut != 15 || ps.Rebinds != 3 {
		t.Fatalf("join node = %+v, want NESTED LOOPS rows=15 rebinds=3\n%s", ps, ps.Render())
	}
	if len(ps.Children) != 2 {
		t.Fatalf("join node has %d children:\n%s", len(ps.Children), ps.Render())
	}
	outer, inner := ps.Children[0], ps.Children[1]
	if outer.Label != "COLLECTION ITERATOR :GROUPS" || outer.RowsOut != 3 || outer.LeafRows != 3 {
		t.Fatalf("outer node = %+v, want 3 rows / 3 leaf", outer)
	}
	if inner.Label != "INDEX RANGE SCAN DG" || inner.RowsOut != 15 || inner.LeafRows != 15 || inner.Probes != 3 {
		t.Fatalf("inner node = %+v, want 15 rows / 15 leaf / 3 probes", inner)
	}

	r, err := db.Exec("EXPLAIN ANALYZE "+sql, binds)
	if err != nil {
		t.Fatal(err)
	}
	for _, wantLine := range []string{
		"NESTED LOOPS (rows=15 rebinds=3",
		"COLLECTION ITERATOR :GROUPS (rows=3 leaf=3",
		"INDEX RANGE SCAN DG (rows=15 leaf=15 probes=3",
	} {
		if !strings.Contains(r.Plan, wantLine) {
			t.Fatalf("EXPLAIN ANALYZE missing %q:\n%s", wantLine, r.Plan)
		}
	}
}

// TestExplainAnalyzeAllenDuringAcrossMethods checks the residual
// accounting of the generating-region strategy on every access method:
// ALLEN_DURING scans the INTERSECTS region (= the query interval), so
// leaf rows must equal the brute-force count of intersecting intervals,
// rows out the count of strictly-contained ones, and residual drops
// exactly the difference — identically on ritree, hint and hint_sharded.
func TestExplainAnalyzeAllenDuringAcrossMethods(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 2000
	ivs := make([]Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := int64(rng.Intn(3000))
		ivs[i] = NewInterval(lo, lo+int64(rng.Intn(400)))
		ids[i] = int64(i)
	}
	q := NewInterval(500, 1500)
	var inter, dur int64
	for _, iv := range ivs {
		if iv.Lower <= q.Upper && iv.Upper >= q.Lower {
			inter++
		}
		if interval.During.Holds(iv, q) {
			dur++
		}
	}
	if dur == 0 || inter <= dur {
		t.Fatalf("degenerate workload: inter=%d dur=%d", inter, dur)
	}

	for _, method := range []string{AccessMethodRITree, AccessMethodHINT, AccessMethodHINTSharded} {
		db, err := OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		c, err := db.CreateCollection("iv", AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.BulkLoad(ivs, ids); err != nil {
			t.Fatal(err)
		}
		sql := "SELECT id FROM iv WHERE allen_during(lower, upper, :a, :b)"
		binds := map[string]interface{}{"a": q.Lower, "b": q.Upper}
		rows, err := db.Query(context.Background(), sql, binds)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		var out int64
		for rows.Next() {
			out++
		}
		if err := rows.Err(); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		rows.Close()
		if out != dur {
			t.Fatalf("%s: allen_during returned %d rows, brute force says %d", method, out, dur)
		}
		want := ExecStats{LeafRows: inter, RowsOut: dur, IndexProbes: 1, ResidualDrops: inter - dur}
		if st := rows.Stats(); st != want {
			t.Fatalf("%s: Rows.Stats() = %+v, want %+v", method, st, want)
		}

		r, err := db.Exec("EXPLAIN ANALYZE "+sql, binds)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		wantLine := fmt.Sprintf("VIA INTERSECTS REGION + RESIDUAL) (rows=%d leaf=%d probes=1 residual=%d",
			dur, inter, inter-dur)
		if !strings.Contains(r.Plan, wantLine) {
			t.Fatalf("%s: EXPLAIN ANALYZE missing %q:\n%s", method, wantLine, r.Plan)
		}
		db.Close()
	}
}

// TestSlowQueryCapture covers WithSlowQueryThreshold, the runtime
// setter, DB.SlowQueries draining, and that captured entries carry the
// executed plan tree.
func TestSlowQueryCapture(t *testing.T) {
	db, err := OpenMemory(WithSlowQueryThreshold(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.SlowQueryThreshold(); got != time.Nanosecond {
		t.Fatalf("SlowQueryThreshold = %v, want 1ns", got)
	}
	c, err := db.CreateCollection("s", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	var batch []IntervalRow
	for i := 0; i < 100; i++ {
		batch = append(batch, IntervalRow{NewInterval(int64(i), int64(i+5)), int64(i)})
	}
	if err := c.InsertMany(batch); err != nil {
		t.Fatal(err)
	}
	sql := "SELECT id FROM s WHERE intersects(lower, upper, 10, 20)"
	if _, err := db.Exec(sql, nil); err != nil {
		t.Fatal(err)
	}
	var captured *SlowQuery
	for _, sq := range db.SlowQueries() {
		if sq.SQL == sql {
			sq := sq
			captured = &sq
		}
	}
	if captured == nil {
		t.Fatal("1ns threshold did not capture the SELECT")
	}
	if captured.Duration <= 0 || captured.When.IsZero() {
		t.Fatalf("capture missing timing: %+v", captured)
	}
	if captured.Stats.LeafRows == 0 || captured.Stats.RowsOut == 0 {
		t.Fatalf("capture missing cursor stats: %+v", captured.Stats)
	}
	if captured.Plan.Label == "" || !strings.Contains(captured.Plan.Render(), "DOMAIN INDEX S$AM") {
		t.Fatalf("capture missing plan tree: %q", captured.Plan.Render())
	}
	// The drain cleared the ring.
	if left := db.SlowQueries(); len(left) != 0 {
		t.Fatalf("ring not cleared: %d entries", len(left))
	}
	// 0 disables capture.
	db.SetSlowQueryThreshold(0)
	if _, err := db.Exec(sql, nil); err != nil {
		t.Fatal(err)
	}
	if got := db.SlowQueries(); len(got) != 0 {
		t.Fatalf("capture ran while disabled: %v", got)
	}
	// Re-armed at runtime, the cursor path (Query..Close) is captured too.
	db.SetSlowQueryThreshold(time.Nanosecond)
	rows, err := db.Query(context.Background(), sql, nil)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
	}
	rows.Close()
	found := false
	for _, sq := range db.SlowQueries() {
		if sq.SQL == sql && sq.Stats.LeafRows > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("cursor statement not captured after re-arming")
	}
}

// TestCollectionMetrics checks the per-collection counter view on every
// access method: the access-method family must record the scans the
// collection served, under the method-specific counter names.
func TestCollectionMetrics(t *testing.T) {
	for _, method := range []string{AccessMethodRITree, AccessMethodHINT, AccessMethodHINTSharded} {
		db, err := OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		c, err := db.CreateCollection("cm", AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		var batch []IntervalRow
		for i := 0; i < 500; i++ {
			batch = append(batch, IntervalRow{NewInterval(int64(i), int64(i+10)), int64(i)})
		}
		if err := c.InsertMany(batch); err != nil {
			t.Fatal(err)
		}
		const nq = 7
		for i := 0; i < nq; i++ {
			if _, err := c.Intersecting(NewInterval(int64(i*50), int64(i*50+20))); err != nil {
				t.Fatal(err)
			}
		}
		m := c.Metrics()
		if m["queries"] < nq {
			t.Fatalf("%s: Collection.Metrics queries = %d, want >= %d (have %v)", method, m["queries"], nq, m)
		}
		switch method {
		case AccessMethodRITree:
			if m["node_visits"] == 0 {
				t.Fatalf("%s: no node_visits recorded: %v", method, m)
			}
		default: // hint variants
			if m["shard_scans"] < m["queries"] {
				t.Fatalf("%s: shard_scans %d < queries %d: %v", method, m["shard_scans"], m["queries"], m)
			}
			if m["partitions_visited"] == 0 {
				t.Fatalf("%s: no partitions_visited recorded: %v", method, m)
			}
		}
		// The same counters appear in the DB-wide snapshot under the
		// index.<name>$am prefix.
		if v := db.Metrics().Counter("index.cm$am.queries"); v != m["queries"] {
			t.Fatalf("%s: DB.Metrics index.cm$am.queries = %d, Collection.Metrics = %d", method, v, m["queries"])
		}
		db.Close()
	}
}

// TestMetricsLatencyHistograms checks the per-kind latency histograms:
// every executed statement lands one observation under its kind.
func TestMetricsLatencyHistograms(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("h", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(1, 5), 1); err != nil {
		t.Fatal(err)
	}
	const nq = 5
	for i := 0; i < nq; i++ {
		if _, err := db.Exec("SELECT id FROM h WHERE intersects(lower, upper, 0, 10)", nil); err != nil {
			t.Fatal(err)
		}
	}
	snap := db.Metrics()
	h, ok := snap.Histograms["sql.latency.select"]
	if !ok {
		t.Fatalf("no sql.latency.select histogram: %v", snap.Histograms)
	}
	if h.Count != nq {
		t.Fatalf("sql.latency.select count = %d, want %d", h.Count, nq)
	}
	if h.P50 <= 0 || h.Max < h.P50 {
		t.Fatalf("implausible latency quantiles: %+v", h)
	}
	if snap.Counter("sql.stmt.select") != nq {
		t.Fatalf("sql.stmt.select = %d, want %d", snap.Counter("sql.stmt.select"), nq)
	}
}
