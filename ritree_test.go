package ritree

import (
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestPublicAPIQuickPath(t *testing.T) {
	idx, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	if err := idx.Insert(NewInterval(10, 20), 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(NewInterval(15, 40), 2); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(Point(17), 3); err != nil {
		t.Fatal(err)
	}
	ids, err := idx.Intersecting(NewInterval(16, 18))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	ids, _ = idx.Stab(30)
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("Stab = %v", ids)
	}
	n, _ := idx.CountIntersecting(NewInterval(0, 100))
	if n != 3 {
		t.Fatalf("Count = %d", n)
	}
	ok, err := idx.Delete(NewInterval(10, 20), 1)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if idx.Count() != 2 {
		t.Fatalf("Count = %d", idx.Count())
	}
	if !strings.Contains(idx.String(), "n=2") {
		t.Fatalf("String = %s", idx.String())
	}
}

func TestPublicAllenQueries(t *testing.T) {
	idx, _ := New()
	defer idx.Close()
	idx.Insert(NewInterval(0, 10), 1)
	idx.Insert(NewInterval(10, 20), 2)
	idx.Insert(NewInterval(20, 30), 3)
	idx.Insert(NewInterval(5, 25), 4)

	q := NewInterval(10, 20)
	cases := []struct {
		r    Relation
		want []int64
	}{
		{Equals, []int64{2}},
		{Meets, []int64{1}},
		{MetBy, []int64{3}},
		{Contains, []int64{4}},
	}
	for _, c := range cases {
		got, err := idx.Query(c.r, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("%v: got %v, want %v", c.r, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%v: got %v, want %v", c.r, got, c.want)
			}
		}
	}
	if ClassifyRelation(NewInterval(0, 10), q) != Meets {
		t.Fatal("ClassifyRelation wrong")
	}
}

func TestPublicTemporal(t *testing.T) {
	idx, _ := New()
	defer idx.Close()
	idx.Insert(NewInterval(5, 10), 1)
	idx.InsertInfinite(8, 2)
	idx.InsertNow(9, 3)
	idx.SetNow(12)
	ids, _ := idx.Intersecting(NewInterval(11, 100))
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	idx.SetNow(8)
	ids, _ = idx.Intersecting(NewInterval(11, 100))
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("ids = %v", ids)
	}
	if idx.Now() != 8 {
		t.Fatalf("Now = %d", idx.Now())
	}
}

func TestPublicPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "iv.db")
	idx, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 500; i++ {
		if err := idx.Insert(NewInterval(i*10, i*10+100), i); err != nil {
			t.Fatal(err)
		}
	}
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	idx2, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	if idx2.Count() != 500 {
		t.Fatalf("reopened Count = %d", idx2.Count())
	}
	ids, err := idx2.Intersecting(NewInterval(1000, 1005))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 {
		t.Fatal("no results after reopen")
	}
	// Still writable.
	if err := idx2.Insert(NewInterval(1, 2), 9999); err != nil {
		t.Fatal(err)
	}
}

func TestOpenReattachesDomainIndexes(t *testing.T) {
	// Domain indexes created through Exec persist their definitions in the
	// catalog; Open on an existing file re-attaches them, so post-reopen
	// DML through Exec keeps them maintained.
	dir := t.TempDir()
	path := filepath.Join(dir, "iv.db")
	idx, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	mustExec := func(x *Index, sql string) *Result {
		t.Helper()
		r, err := x.Exec(sql, nil)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		return r
	}
	mustExec(idx, "CREATE TABLE ev (lo int, hi int, id int)")
	mustExec(idx, "CREATE INDEX ev_rit ON ev (lo, hi) INDEXTYPE IS ritree")
	mustExec(idx, "CREATE INDEX ev_mm ON ev (lo, hi) INDEXTYPE IS hint")
	mustExec(idx, "INSERT INTO ev VALUES (10, 20, 1)")
	if err := idx.Close(); err != nil {
		t.Fatal(err)
	}

	idx2, err := OpenIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer idx2.Close()
	mustExec(idx2, "INSERT INTO ev VALUES (15, 30, 2)")
	r := mustExec(idx2, "SELECT id FROM ev WHERE intersects(lo, hi, 18, 19) ORDER BY id")
	if len(r.Rows) != 2 || r.Rows[0][0] != 1 || r.Rows[1][0] != 2 {
		t.Fatalf("post-reopen domain query rows = %v", r.Rows)
	}
	plan := mustExec(idx2, "EXPLAIN SELECT id FROM ev WHERE intersects(lo, hi, 18, 19)")
	if !strings.Contains(plan.Plan, "DOMAIN INDEX") {
		t.Fatalf("operator not served by a re-attached domain index:\n%s", plan.Plan)
	}
}

func TestPublicSQLSurface(t *testing.T) {
	idx, _ := New()
	defer idx.Close()
	idx.Insert(NewInterval(100, 200), 7)
	// The interval relation is plain SQL-visible.
	r, err := idx.Exec("SELECT lower, upper, id FROM intervals WHERE id = 7", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != 100 || r.Rows[0][1] != 200 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// The Figure 9 statement via public API.
	ids := map[int64]bool{}
	res, err := idx.Exec(idx.IntersectionSQL(), idx.IntersectionBinds(NewInterval(150, 160)))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		ids[row[0]] = true
	}
	if !ids[7] || len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	plan, err := idx.ExplainIntersection(NewInterval(150, 160))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "UNION-ALL") || !strings.Contains(plan, "INDEX RANGE SCAN") {
		t.Fatalf("plan = %s", plan)
	}
}

func TestPublicBulkLoadAndStats(t *testing.T) {
	idx, err := New(WithPageSize(2048), WithCacheSize(200))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	rng := rand.New(rand.NewSource(1))
	n := 20000
	ivs := make([]Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 20)
		ivs[i] = NewInterval(lo, lo+rng.Int63n(2048))
		ids[i] = int64(i)
	}
	if err := idx.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	if idx.Count() != int64(n) {
		t.Fatalf("Count = %d", idx.Count())
	}
	if idx.IndexEntries() != int64(2*n) {
		t.Fatalf("IndexEntries = %d, want %d", idx.IndexEntries(), 2*n)
	}
	idx.ResetStats()
	got, err := idx.Intersecting(NewInterval(500000, 505000))
	if err != nil {
		t.Fatal(err)
	}
	st := idx.Stats()
	if st.PhysicalReads == 0 {
		t.Fatal("no physical reads counted")
	}
	// Sanity check against brute force.
	var want []int64
	q := NewInterval(500000, 505000)
	for i, iv := range ivs {
		if iv.Intersects(q) {
			want = append(want, ids[i])
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("got %d ids, want %d", len(got), len(want))
	}
}

func TestPublicConcurrentReadersAndWriters(t *testing.T) {
	idx, _ := New()
	defer idx.Close()
	for i := int64(0); i < 200; i++ {
		idx.Insert(NewInterval(i*10, i*10+50), i)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				lo := rng.Int63n(2000)
				if _, err := idx.Intersecting(NewInterval(lo, lo+100)); err != nil {
					errs <- err
					return
				}
			}
		}(int64(r))
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100 + seed))
			for i := int64(0); i < 300; i++ {
				lo := rng.Int63n(2000)
				if err := idx.Insert(NewInterval(lo, lo+20), 10000+seed*1000+i); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					idx.Delete(NewInterval(lo, lo+20), 10000+seed*1000+i)
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	// The index is still consistent.
	if _, err := idx.Intersecting(NewInterval(0, 5000)); err != nil {
		t.Fatal(err)
	}
}

func TestPublicOptions(t *testing.T) {
	idx, err := New(WithPageSize(512), WithCacheSize(64), WithTreeName("spans"),
		WithReadLatency(time.Microsecond))
	if err != nil {
		t.Fatal(err)
	}
	defer idx.Close()
	idx.Insert(NewInterval(1, 5), 1)
	if _, err := idx.Exec("SELECT id FROM spans", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := New(WithPageSize(1000)); err == nil {
		t.Fatal("non-power-of-two page size accepted")
	}
}
