module ritree

go 1.22
