module ritree

go 1.23
