package ritree

// This file exposes HINT — the main-memory hierarchical interval index of
// Christodoulou, Bouros and Mamoulis (SIGMOD 2022, see PAPERS.md and
// internal/hint) — as a top-level convenience API next to the RI-tree's.
// Where ritree.Index is the paper's disk-relational access method over a
// page store, ritree.HINT trades persistence for raw main-memory speed:
// the same intersection and stabbing queries, served from cache-friendly
// partition arrays with no page or B+-tree traversal. Infinite intervals
// ([lo, ∞)) are supported; the §4.6 now-relative intervals are not —
// Insert rejects the NowMarker sentinel rather than silently treating
// [lo, now] as [lo, ∞).
//
//	idx, _ := ritree.NewHINT()
//	idx.Insert(ritree.NewInterval(10, 20), 1)
//	idx.Insert(ritree.NewInterval(15, 40), 2)
//	ids, _ := idx.Intersecting(ritree.NewInterval(18, 19)) // -> [1 2]

import (
	"sync"

	"ritree/internal/hint"
)

// HINTOption configures NewHINT.
type HINTOption func(*hint.Options)

// WithHINTBits sets the domain width: interval starts must lie in
// [0, 2^bits-1] (default 20, the paper's data space). Interval ends
// beyond the domain — including Infinity — are indexed as extending to
// the domain maximum.
func WithHINTBits(bits int) HINTOption {
	return func(o *hint.Options) { o.Bits = bits }
}

// WithHINTLevels sets m, the depth of the domain-bisection hierarchy
// (default 10). Setting it equal to the domain bits enables the
// comparison-free variant.
func WithHINTLevels(m int) HINTOption {
	return func(o *hint.Options) { o.Levels = m }
}

// HINT is a main-memory hierarchical interval index. All methods are safe
// for concurrent use: queries share a read lock, mutations take the write
// lock — the same statement-level isolation the RI-tree Index provides.
type HINT struct {
	mu sync.RWMutex
	ix *hint.Index
}

// NewHINT creates an empty main-memory HINT index.
func NewHINT(opts ...HINTOption) (*HINT, error) {
	var o hint.Options
	for _, opt := range opts {
		opt(&o)
	}
	ix, err := hint.New(o)
	if err != nil {
		return nil, err
	}
	return &HINT{ix: ix}, nil
}

// Insert registers iv under id. Multiple registrations of the same
// (interval, id) pair are allowed and count separately.
func (h *HINT) Insert(iv Interval, id int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ix.Insert(iv, id)
}

// InsertInfinite registers [lower, ∞) under id.
func (h *HINT) InsertInfinite(lower, id int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ix.Insert(NewInterval(lower, Infinity), id)
}

// Delete removes one registration of (iv, id), reporting whether it
// existed.
func (h *HINT) Delete(iv Interval, id int64) (bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ix.Delete(iv, id)
}

// BulkLoad inserts ivs[i] under ids[i].
func (h *HINT) BulkLoad(ivs []Interval, ids []int64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.ix.BulkLoad(ivs, ids)
}

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (h *HINT) Intersecting(q Interval) ([]int64, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.Intersecting(q)
}

// IntersectingFunc streams the ids of intervals intersecting q in no
// particular order; return false from fn to stop early.
func (h *HINT) IntersectingFunc(q Interval, fn func(id int64) bool) error {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.IntersectingFunc(q, fn)
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (h *HINT) Stab(p int64) ([]int64, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.Stab(p)
}

// CountIntersecting returns the number of intervals intersecting q.
func (h *HINT) CountIntersecting(q Interval) (int64, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.CountIntersecting(q)
}

// Count returns the number of registered intervals.
func (h *HINT) Count() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.Count()
}

// Entries returns the number of stored copies (originals plus replicas),
// the space metric comparable to Index.IndexEntries.
func (h *HINT) Entries() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.Entries()
}

// Replicas returns how many stored copies are replicas.
func (h *HINT) Replicas() int64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.Replicas()
}

// Levels returns m, the depth of the bisection hierarchy.
func (h *HINT) Levels() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.Levels()
}

// ComparisonFree reports whether the index runs the comparison-free
// variant (levels == domain bits).
func (h *HINT) ComparisonFree() bool {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.ComparisonFree()
}

// Clear drops every stored interval, keeping the configuration.
func (h *HINT) Clear() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ix.Clear()
}

// String summarizes the index.
func (h *HINT) String() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.ix.String()
}
