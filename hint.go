package ritree

// This file exposes HINT — the main-memory hierarchical interval index of
// Christodoulou, Bouros and Mamoulis (SIGMOD 2022, see PAPERS.md and
// internal/hint) — as a top-level convenience API next to the RI-tree's.
// Where ritree.Index is the paper's disk-relational access method over a
// page store, ritree.HINT trades persistence for raw main-memory speed:
// the same intersection and stabbing queries, served from sorted,
// cache-friendly partition arrays with no page or B+-tree traversal.
// Infinite intervals ([lo, ∞)) are supported; the §4.6 now-relative
// intervals are not — Insert rejects the NowMarker sentinel rather than
// silently treating [lo, now] as [lo, ∞).
//
//	idx, _ := ritree.NewHINT()
//	idx.Insert(ritree.NewInterval(10, 20), 1)
//	idx.Insert(ritree.NewInterval(15, 40), 2)
//	ids, _ := idx.Intersecting(ritree.NewInterval(18, 19)) // -> [1 2]
//
// All methods are safe for concurrent use. The index is split into one
// or more shards (WithHINTShards), each behind its own reader-writer
// lock: queries take per-shard read locks and run concurrently with each
// other, while a mutation write-locks only the shard owning its id — so
// under WithHINTShards(n), a mutation blocks a concurrent query only
// for the ~1/n of its scan spent on that shard, and point reads on the
// other shards are never touched. BulkLoad and Optimize leave every shard in the
// cache-conscious flat layout; incremental inserts land in a small
// sorted overlay that the next Optimize folds in.

import (
	"ritree/internal/hint"
)

// HINTOption configures NewHINT.
type HINTOption func(*hint.Options)

// WithHINTBits sets the domain width: interval starts must lie in
// [0, 2^bits-1] (default 20, the paper's data space). Interval ends
// beyond the domain — including Infinity — are indexed as extending to
// the domain maximum.
func WithHINTBits(bits int) HINTOption {
	return func(o *hint.Options) { o.Bits = bits }
}

// WithHINTLevels sets m, the depth of the domain-bisection hierarchy
// (default 10). Setting it equal to the domain bits enables the
// comparison-free variant.
func WithHINTLevels(m int) HINTOption {
	return func(o *hint.Options) { o.Levels = m }
}

// WithHINTShards splits the index into n independently locked shards
// (default 1): a mutation write-locks only the shard owning its id, so
// reads on the other shards proceed untouched and a concurrent query is
// blocked only for the portion of its scan that visits that shard. Use roughly the expected
// writer parallelism; queries visit every shard, so very large n taxes
// small queries.
func WithHINTShards(n int) HINTOption {
	return func(o *hint.Options) { o.Shards = n }
}

// HINT is a main-memory hierarchical interval index, safe for concurrent
// use (see the package-level notes above for the sharded locking model).
type HINT struct {
	s *hint.Sharded
}

// NewHINT creates an empty main-memory HINT index.
func NewHINT(opts ...HINTOption) (*HINT, error) {
	var o hint.Options
	for _, opt := range opts {
		opt(&o)
	}
	s, err := hint.NewSharded(o)
	if err != nil {
		return nil, err
	}
	return &HINT{s: s}, nil
}

// Insert registers iv under id. Multiple registrations of the same
// (interval, id) pair are allowed and count separately.
func (h *HINT) Insert(iv Interval, id int64) error {
	return h.s.Insert(iv, id)
}

// InsertInfinite registers [lower, ∞) under id.
func (h *HINT) InsertInfinite(lower, id int64) error {
	return h.s.Insert(NewInterval(lower, Infinity), id)
}

// Delete removes one registration of (iv, id), reporting whether it
// existed.
func (h *HINT) Delete(iv Interval, id int64) (bool, error) {
	return h.s.Delete(iv, id)
}

// BulkLoad inserts ivs[i] under ids[i] and compacts every shard into the
// cache-conscious flat layout — the fast path for loading large datasets.
func (h *HINT) BulkLoad(ivs []Interval, ids []int64) error {
	return h.s.BulkLoad(ivs, ids)
}

// Optimize compacts the index into its flat cache-conscious layout,
// folding in everything inserted since the last Optimize or BulkLoad.
// Call it after a burst of incremental inserts to restore peak query
// throughput; queries and updates keep working either way.
func (h *HINT) Optimize() { h.s.Optimize() }

// Intersecting returns the ids of all intervals intersecting q, ascending.
func (h *HINT) Intersecting(q Interval) ([]int64, error) {
	return h.s.Intersecting(q)
}

// IntersectingFunc streams the ids of intervals intersecting q in no
// particular order; return false from fn to stop early. fn runs under a
// shard read lock and must not call the index's mutating methods.
func (h *HINT) IntersectingFunc(q Interval, fn func(id int64) bool) error {
	return h.s.IntersectingFunc(q, fn)
}

// Stab returns the ids of all intervals containing the point p, ascending.
func (h *HINT) Stab(p int64) ([]int64, error) {
	return h.s.Stab(p)
}

// Query returns the ids of all intervals i with "i r q" for any of
// Allen's thirteen relations (paper §4.5), ascending. HINT evaluates the
// relation by the same strategy as the RI-tree: the generating
// intersection query of the predicate, with the exact relation as a
// residual filter over the stored endpoints.
func (h *HINT) Query(r Relation, q Interval) ([]int64, error) {
	return h.s.QueryRelation(r, q)
}

// CountIntersecting returns the number of intervals intersecting q.
func (h *HINT) CountIntersecting(q Interval) (int64, error) {
	return h.s.CountIntersecting(q)
}

// Count returns the number of registered intervals.
func (h *HINT) Count() int64 { return h.s.Count() }

// Entries returns the number of stored copies (originals plus replicas),
// the space metric comparable to Index.IndexEntries.
func (h *HINT) Entries() int64 { return h.s.Entries() }

// Replicas returns how many stored copies are replicas.
func (h *HINT) Replicas() int64 { return h.s.Replicas() }

// Levels returns m, the depth of the bisection hierarchy.
func (h *HINT) Levels() int { return h.s.Levels() }

// Shards returns the number of independently locked shards.
func (h *HINT) Shards() int { return h.s.Shards() }

// Optimized reports whether every shard has its flat cache-conscious
// storage built — the state after BulkLoad or Optimize.
func (h *HINT) Optimized() bool { return h.s.Optimized() }

// ComparisonFree reports whether the index runs the comparison-free
// variant (levels == domain bits).
func (h *HINT) ComparisonFree() bool { return h.s.ComparisonFree() }

// Clear drops every stored interval, keeping the configuration.
func (h *HINT) Clear() { h.s.Clear() }

// String summarizes the index.
func (h *HINT) String() string { return h.s.String() }
