package ritree

import (
	"context"
	"errors"
	"iter"
)

// errZeroQuery reports a zero Query value passed to Scan.
var errZeroQuery = errors.New("ritree: zero Query value; use Intersects, Stabbing or Related")

// Query describes one streaming query for Querier.Scan. Build one with
// Intersects, Stabbing or Related; the zero value is invalid.
type Query struct {
	kind queryKind
	iv   Interval
	r    Relation
	p    int64
}

type queryKind int

const (
	queryZero queryKind = iota
	queryIntersects
	queryStab
	queryRelation
)

// Intersects matches every interval sharing at least one point with q.
func Intersects(q Interval) Query { return Query{kind: queryIntersects, iv: q} }

// Stabbing matches every interval containing the point p.
func Stabbing(p int64) Query { return Query{kind: queryStab, p: p} }

// Related matches every interval i with "i r q" under Allen relation r
// (paper §4.5).
func Related(r Relation, q Interval) Query { return Query{kind: queryRelation, r: r, iv: q} }

// String names the query for logs and errors.
func (q Query) String() string {
	switch q.kind {
	case queryIntersects:
		return "intersects " + q.iv.String()
	case queryStab:
		return "stabbing " + Point(q.p).String()
	case queryRelation:
		return q.r.String() + " " + q.iv.String()
	}
	return "invalid query"
}

// scanSeq adapts a callback-streaming query into a range-over-func
// iterator with context cancellation. acquire/release bracket the whole
// iteration (nil for access methods that lock internally): they run when
// the consumer starts ranging, and release runs however the loop ends —
// normal exhaustion, early break, or a panic in the loop body. run streams
// ids into the wrapped yield; a cancelled ctx or a query error is
// delivered as one final (0, err) pair, matching the iter.Seq2 error
// convention. Cancellation is observed before the scan starts, at every
// yielded id, and once more at completion — so a cancelled ctx always
// surfaces, including on scans that match nothing. A scan that is never
// ranged over costs nothing.
func scanSeq(ctx context.Context, acquire, release func(), run func(fn func(int64) bool) error) iter.Seq2[int64, error] {
	return func(yield func(int64, error) bool) {
		ctxErr := func() error {
			if ctx == nil {
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
				return nil
			}
		}
		if err := ctxErr(); err != nil {
			yield(0, err)
			return
		}
		if acquire != nil {
			acquire()
			defer release()
		}
		var cancelErr error
		stopped := false
		err := run(func(id int64) bool {
			if cancelErr = ctxErr(); cancelErr != nil {
				return false
			}
			if !yield(id, nil) {
				stopped = true
				return false
			}
			return true
		})
		if stopped {
			return
		}
		if err == nil {
			err = cancelErr
		}
		if err == nil {
			err = ctxErr() // surfaces cancellation even on match-less scans
		}
		if err != nil {
			yield(0, err)
		}
	}
}

// Scan streams the legacy Index's ids matching q under the database read
// lock; see Collection.Scan for the iteration contract.
func (x *Index) Scan(ctx context.Context, q Query) iter.Seq2[int64, error] {
	return scanSeq(ctx, x.db.mu.RLock, x.db.mu.RUnlock, func(fn func(int64) bool) error {
		switch q.kind {
		case queryIntersects:
			return x.tree.IntersectingFunc(q.iv, fn)
		case queryStab:
			return x.tree.IntersectingFunc(Point(q.p), fn)
		case queryRelation:
			return x.tree.QueryRelationFunc(q.r, q.iv, fn)
		}
		return errZeroQuery
	})
}

// Scan streams the HINT's ids matching q; the shards lock internally, so
// no outer lock is held between yields. See Collection.Scan for the
// iteration contract.
func (h *HINT) Scan(ctx context.Context, q Query) iter.Seq2[int64, error] {
	return scanSeq(ctx, nil, nil, func(fn func(int64) bool) error {
		switch q.kind {
		case queryIntersects:
			return h.s.IntersectingFunc(q.iv, fn)
		case queryStab:
			return h.s.IntersectingFunc(Point(q.p), fn)
		case queryRelation:
			return h.s.QueryRelationFunc(q.r, q.iv, fn)
		}
		return errZeroQuery
	})
}
