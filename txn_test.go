package ritree

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCursorNeverBlocksWriters is the PR's core acceptance: a reader
// holding an open streaming cursor must never block a concurrent
// InsertMany / Delete commit, and the cursor keeps answering from its
// snapshot regardless.
func TestCursorNeverBlocksWriters(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	rows := make([]IntervalRow, n)
	for i := range rows {
		rows[i] = IntervalRow{NewInterval(int64(i), int64(i)+10), int64(i)}
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}

	cur, err := db.Query(context.Background(),
		"SELECT id FROM resv WHERE intersects(lower, upper, :a, :b)",
		map[string]interface{}{"a": 0, "b": 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if !cur.Next() {
		t.Fatalf("cursor empty: %v", cur.Err())
	}

	// With the cursor suspended mid-stream, writes must commit promptly.
	done := make(chan error, 1)
	go func() {
		extra := make([]IntervalRow, 100)
		for i := range extra {
			extra[i] = IntervalRow{NewInterval(int64(n+i), int64(n+i)+10), int64(n + i)}
		}
		if err := c.InsertMany(extra); err != nil {
			done <- err
			return
		}
		_, err := c.Delete(NewInterval(0, 10), 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer blocked behind an open cursor")
	}

	// The cursor's snapshot is unshifted: it drains exactly the original
	// n rows — not the 100 inserted nor minus the 1 deleted.
	got := 1
	for cur.Next() {
		got++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("snapshot cursor drained %d rows, want %d", got, n)
	}
	// A fresh cursor sees the writes.
	if cnt := c.Count(); cnt != n+100-1 {
		t.Fatalf("live count = %d, want %d", cnt, n+100-1)
	}
}

// TestCloseWithOpenCursor: DB.Close must not panic or deadlock against an
// open cursor; the cursor fails cleanly through Rows.Err.
func TestCloseWithOpenCursor(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	c, err := db.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]IntervalRow, 2000)
	for i := range rows {
		rows[i] = IntervalRow{NewInterval(int64(i), int64(i)+5), int64(i)}
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	cur, err := db.Query(context.Background(),
		"SELECT id FROM resv WHERE intersects(lower, upper, :a, :b)",
		map[string]interface{}{"a": 0, "b": 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("cursor empty: %v", cur.Err())
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for cur.Next() {
	}
	if cur.Err() == nil {
		t.Fatal("cursor survived DB.Close without an error")
	}
	_ = cur.Close()
}

func TestTransactionCommitAndRollback(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(10, 20), 1); err != nil {
		t.Fatal(err)
	}

	// Commit applies buffered writes; reads inside the txn stay on the
	// BEGIN snapshot and do not see them.
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("INSERT INTO resv VALUES (30, 40, 2)", nil); err != nil {
		t.Fatal(err)
	}
	r, err := txn.Exec("SELECT COUNT(*) FROM resv", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0] != 1 {
		t.Fatalf("read inside txn saw %d rows, want the BEGIN snapshot's 1", r.Rows[0][0])
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if cnt := c.Count(); cnt != 2 {
		t.Fatalf("count after commit = %d, want 2", cnt)
	}

	// Rollback discards.
	txn, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("DELETE FROM resv WHERE id = 1", nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Rollback(); err != nil {
		t.Fatal(err)
	}
	if cnt := c.Count(); cnt != 2 {
		t.Fatalf("count after rollback = %d, want 2", cnt)
	}

	// Buffered DELETE resolves victims against the snapshot and applies
	// at commit.
	txn, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	r, err = txn.Exec("DELETE FROM resv WHERE id = 2", nil)
	if err != nil {
		t.Fatal(err)
	}
	if r.Affected != 1 {
		t.Fatalf("buffered delete affected %d, want 1", r.Affected)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if cnt := c.Count(); cnt != 1 {
		t.Fatalf("count after delete commit = %d, want 1", cnt)
	}
}

// TestTransactionConflict: a programmatic write that lands between BEGIN
// and COMMIT on a touched table aborts the transaction — first committer
// wins.
func TestTransactionConflict(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(NewInterval(10, 20), 1); err != nil {
		t.Fatal(err)
	}

	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("INSERT INTO resv VALUES (30, 40, 2)", nil); err != nil {
		t.Fatal(err)
	}
	// Concurrent auto-commit writer touches the same table first.
	if err := c.Insert(NewInterval(50, 60), 3); err != nil {
		t.Fatal(err)
	}
	err = txn.Commit()
	if !errors.Is(err, ErrTxnConflict) {
		t.Fatalf("Commit = %v, want ErrTxnConflict", err)
	}
	// The aborted transaction applied nothing: only rows 1 and 3 exist.
	ids, err := c.Intersecting(NewInterval(0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("rows after aborted commit = %v, want [1 3]", ids)
	}

	// A transaction whose touched tables saw no concurrent write still
	// commits after unrelated activity.
	txn, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := txn.Exec("INSERT INTO resv VALUES (70, 80, 4)", nil); err != nil {
		t.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		t.Fatal(err)
	}
	if cnt := c.Count(); cnt != 3 {
		t.Fatalf("count = %d, want 3", cnt)
	}
}

func TestTransactionRejectsDDLAndNesting(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateCollection("resv"); err != nil {
		t.Fatal(err)
	}
	txn, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	defer txn.Rollback()
	if _, err := txn.Exec("CREATE TABLE t2 (a, b)", nil); err == nil {
		t.Fatal("DDL inside a transaction did not error")
	}
	if _, err := db.Begin(); err == nil {
		t.Fatal("nested Begin did not error")
	}
	if _, err := db.CreateCollection("other"); err == nil {
		t.Fatal("CreateCollection inside a transaction did not error")
	}
}
