package ritree

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHINTPublicAPIQuickPath(t *testing.T) {
	idx, err := NewHINT()
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(NewInterval(10, 20), 1); err != nil {
		t.Fatal(err)
	}
	if err := idx.Insert(NewInterval(15, 40), 2); err != nil {
		t.Fatal(err)
	}
	idx.InsertInfinite(30, 3)
	ids, err := idx.Intersecting(NewInterval(18, 19))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("ids = %v", ids)
	}
	ids, _ = idx.Stab(35)
	if len(ids) != 2 || ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("stab = %v", ids)
	}
	if n, _ := idx.CountIntersecting(NewInterval(0, 1000)); n != 3 {
		t.Fatalf("count = %d", n)
	}
	ok, err := idx.Delete(NewInterval(10, 20), 1)
	if err != nil || !ok {
		t.Fatalf("delete = %v, %v", ok, err)
	}
	if idx.Count() != 2 {
		t.Fatalf("count = %d", idx.Count())
	}
	if idx.Entries() < idx.Count() || idx.Replicas() > idx.Entries() {
		t.Fatalf("entries = %d, replicas = %d", idx.Entries(), idx.Replicas())
	}
	if idx.String() == "" || idx.Levels() < 1 {
		t.Fatal("introspection broken")
	}
}

func TestHINTMatchesRITreeIndex(t *testing.T) {
	// The two top-level access methods must answer identically over the
	// same workload.
	rit, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer rit.Close()
	hin, err := NewHINT()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4242))
	for i := int64(0); i < 3000; i++ {
		lo := rng.Int63n(1 << 18)
		iv := NewInterval(lo, lo+rng.Int63n(4096))
		if err := rit.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
		if err := hin.Insert(iv, i); err != nil {
			t.Fatal(err)
		}
	}
	for qi := 0; qi < 100; qi++ {
		lo := rng.Int63n(1 << 18)
		q := NewInterval(lo, lo+rng.Int63n(8192))
		if qi%7 == 0 {
			q = Point(lo)
		}
		a, err := rit.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := hin.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %v: RI-tree %d ids, HINT %d ids", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v: id %d: %d vs %d", q, i, a[i], b[i])
			}
		}
	}
}

func TestHINTConcurrentUse(t *testing.T) {
	idx, err := NewHINT(WithHINTBits(16), WithHINTLevels(8), WithHINTShards(4))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Shards() != 4 {
		t.Fatalf("Shards = %d", idx.Shards())
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 500; i++ {
				lo := rng.Int63n(1 << 16)
				hi := lo + rng.Int63n(512)
				if hi > 1<<16-1 {
					hi = 1<<16 - 1
				}
				id := int64(w*1000 + i)
				if err := idx.Insert(NewInterval(lo, hi), id); err != nil {
					t.Error(err)
					return
				}
				if _, err := idx.Intersecting(NewInterval(lo, hi)); err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					if _, err := idx.Delete(NewInterval(lo, hi), id); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	ids, err := idx.Intersecting(NewInterval(0, 1<<16-1))
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if int64(len(ids)) != idx.Count() {
		t.Fatalf("full-domain query %d ids, count %d", len(ids), idx.Count())
	}
}

func TestHINTShardedAndOptimized(t *testing.T) {
	// The sharded index must answer exactly like the single-shard one,
	// before and after Optimize, and BulkLoad must leave every shard in
	// the flat layout.
	one, err := NewHINT()
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewHINT(WithHINTShards(8))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	n := 4000
	ivs := make([]Interval, n)
	ids := make([]int64, n)
	for i := range ivs {
		lo := rng.Int63n(1 << 20)
		ivs[i] = NewInterval(lo, lo+rng.Int63n(4096))
		ids[i] = int64(i)
	}
	if err := one.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	if err := many.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	if !one.Optimized() || !many.Optimized() {
		t.Fatalf("BulkLoad left optimized = %v / %v", one.Optimized(), many.Optimized())
	}
	if one.Count() != many.Count() || one.Entries() != many.Entries() {
		t.Fatalf("count/entries diverge: %d/%d vs %d/%d",
			one.Count(), one.Entries(), many.Count(), many.Entries())
	}
	for qi := 0; qi < 200; qi++ {
		lo := rng.Int63n(1 << 20)
		q := NewInterval(lo, lo+rng.Int63n(8192))
		a, err := one.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := many.Intersecting(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("query %v: 1-shard %d ids, 8-shard %d ids", q, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("query %v: id %d: %d vs %d", q, i, a[i], b[i])
			}
		}
	}
	// Incremental inserts land in the overlay; Optimize folds them in
	// without changing any answer.
	for i := 0; i < 100; i++ {
		lo := rng.Int63n(1 << 20)
		iv := NewInterval(lo, lo+100)
		if err := many.Insert(iv, int64(n+i)); err != nil {
			t.Fatal(err)
		}
		if err := one.Insert(iv, int64(n+i)); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := many.Intersecting(NewInterval(0, 1<<20-1))
	many.Optimize()
	after, _ := many.Intersecting(NewInterval(0, 1<<20-1))
	if len(before) != len(after) {
		t.Fatalf("Optimize changed results: %d vs %d", len(before), len(after))
	}
	if _, err := NewHINT(WithHINTShards(-3)); err == nil {
		t.Fatal("negative shard count accepted")
	}
}

func TestHINTComparisonFreeOption(t *testing.T) {
	idx, err := NewHINT(WithHINTBits(12), WithHINTLevels(12))
	if err != nil {
		t.Fatal(err)
	}
	if !idx.ComparisonFree() {
		t.Fatal("levels == bits should be comparison-free")
	}
	if _, err := NewHINT(WithHINTBits(4), WithHINTLevels(9)); err == nil {
		t.Fatal("levels > bits accepted")
	}
}
