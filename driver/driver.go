// Package driver is a database/sql driver for ritree. It registers as
// "ritree" and accepts three DSN forms:
//
//	tcp://host:port   — connect to a riserver over the wire protocol
//	mem://            — open a private in-memory database in-process
//	file://path.pages — open (or create) a file-backed database in-process
//
// The embedded forms share one *ritree.DB per sql.DB handle (every
// pooled connection sees the same database, exactly like the TCP form
// sees one server), so
//
//	db, err := sql.Open("ritree", "tcp://127.0.0.1:7432")
//
// and mem:// behave identically up to latency. The full SQL surface is
// available: DDL, DML with binds, the ALLEN_* interval operators,
// BEGIN/COMMIT/ROLLBACK through sql.Tx (a conflicting commit returns an
// error satisfying errors.Is(err, ritree.ErrTxnConflict), embedded or
// remote), and streaming SELECT — rows cross the wire in bounded batches
// pulled on demand, so sql.Rows.Close after k rows stops the server-side
// scan after O(k) work.
//
// Values are int64 (the engine's only scalar type); int and int32
// convert on the way in. Placeholders are the engine's named binds
// (:name) — positional arguments map onto the distinct bind names in
// first-appearance order, and sql.Named works too. EXPLAIN statements
// run through Query and come back as a single "plan" text column.
package driver

import (
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"fmt"
	"strings"
	"sync"

	"ritree"
)

func init() {
	sql.Register("ritree", &Driver{})
}

// Driver is the ritree database/sql driver.
type Driver struct{}

// Open opens a single connection. database/sql uses OpenConnector (so
// embedded DSNs share one DB per pool); Open exists for completeness.
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.Connect(context.Background())
}

// OpenConnector validates the DSN once and returns the connector the
// sql.DB pool dials through.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	switch {
	case strings.HasPrefix(dsn, "tcp://"):
		addr := strings.TrimPrefix(dsn, "tcp://")
		if addr == "" {
			return nil, fmt.Errorf("ritree driver: empty address in %q", dsn)
		}
		return &Connector{drv: d, mode: modeTCP, target: addr}, nil
	case dsn == "mem://":
		return &Connector{drv: d, mode: modeMem}, nil
	case strings.HasPrefix(dsn, "file://"):
		path := strings.TrimPrefix(dsn, "file://")
		if path == "" {
			return nil, fmt.Errorf("ritree driver: empty path in %q", dsn)
		}
		return &Connector{drv: d, mode: modeFile, target: path}, nil
	default:
		return nil, fmt.Errorf("ritree driver: unsupported DSN %q (want tcp://, mem:// or file://)", dsn)
	}
}

const (
	modeTCP = iota
	modeMem
	modeFile
)

// Connector dials connections for one DSN. For the embedded modes it
// owns the shared *ritree.DB, opened on first Connect and closed by
// sql.DB.Close (database/sql calls Close on connectors implementing
// io.Closer).
type Connector struct {
	drv    *Driver
	mode   int
	target string

	mu sync.Mutex
	db *ritree.DB
}

// Connect opens one driver connection.
func (c *Connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	switch c.mode {
	case modeTCP:
		r, err := dialRemote(ctx, c.target)
		if err != nil {
			return nil, err
		}
		return &conn{be: r}, nil
	default:
		db, err := c.sharedDB()
		if err != nil {
			return nil, err
		}
		return &conn{be: &embedded{db: db}}, nil
	}
}

func (c *Connector) sharedDB() (*ritree.DB, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.db != nil {
		return c.db, nil
	}
	var err error
	if c.mode == modeMem {
		c.db, err = ritree.OpenMemory()
	} else {
		c.db, err = ritree.Open(c.target)
	}
	return c.db, err
}

// Driver returns the parent driver.
func (c *Connector) Driver() sqldriver.Driver { return c.drv }

// DB returns the shared embedded database behind a mem:// or file://
// connector (opening it if no connection has yet), so an application can
// mix database/sql access with the native API — collections, metrics,
// programmatic scans — on the same store. Build the connector with
// (&Driver{}).OpenConnector and hand it to sql.OpenDB. Errors for tcp://
// connectors: the database lives in the server process.
func (c *Connector) DB() (*ritree.DB, error) {
	if c.mode == modeTCP {
		return nil, fmt.Errorf("ritree driver: DB() on a tcp:// connector (the database is remote)")
	}
	return c.sharedDB()
}

// Close closes the shared embedded database, if one was opened. TCP
// connections close individually with their conns.
func (c *Connector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.db == nil {
		return nil
	}
	db := c.db
	c.db = nil
	return db.Close()
}

// MetricsFetcher is implemented by every connection this driver hands
// out: ServerMetrics returns the database's metrics snapshot as JSON —
// the remote server's for tcp:// connections, the in-process registry's
// for embedded ones. Reach it through sql.Conn.Raw:
//
//	conn.Raw(func(dc interface{}) error {
//		js, err := dc.(driver.MetricsFetcher).ServerMetrics()
//		...
//	})
type MetricsFetcher interface {
	ServerMetrics() (string, error)
}
