package driver_test

import (
	"bufio"
	"context"
	"database/sql"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"ritree"
	ritreedriver "ritree/driver"
	"ritree/internal/server"
	"ritree/internal/wire"
)

// startServer boots an in-process riserver on a loopback port and
// returns the hosting DB (for direct metric assertions) and a DSN.
func startServer(t *testing.T) (*ritree.DB, string) {
	t.Helper()
	rdb, err := ritree.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(rdb, server.Options{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		rdb.Close()
	})
	return rdb, "tcp://" + ln.Addr().String()
}

func openSQL(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("ritree", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExecSQL(t *testing.T, db *sql.DB, q string, args ...interface{}) sql.Result {
	t.Helper()
	res, err := db.Exec(q, args...)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

func collect(t *testing.T, rows *sql.Rows) [][]int64 {
	t.Helper()
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]int64
	for rows.Next() {
		vals := make([]int64, len(cols))
		ptrs := make([]interface{}, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		if err := rows.Scan(ptrs...); err != nil {
			t.Fatal(err)
		}
		out = append(out, vals)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// seed loads the same interval fixture through any DSN.
func seed(t *testing.T, db *sql.DB) {
	t.Helper()
	mustExecSQL(t, db, "CREATE TABLE iv (lower int, upper int, id int)")
	mustExecSQL(t, db, "CREATE INDEX iv_ix ON iv (lower, upper) INDEXTYPE IS ritree")
	stmt, err := db.Prepare("INSERT INTO iv VALUES (:lo, :hi, :id)")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 200; i++ {
		lo := int64(i * 3)
		if _, err := stmt.Exec(lo, lo+int64(i%17)+1, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDriverBasicsEveryDSN(t *testing.T) {
	_, remoteDSN := startServer(t)
	for _, dsn := range []string{"mem://", remoteDSN} {
		t.Run(dsn, func(t *testing.T) {
			db := openSQL(t, dsn)
			if err := db.Ping(); err != nil {
				t.Fatal(err)
			}
			seed(t, db)

			// Positional args map to bind names in first-appearance order.
			rows, err := db.Query("SELECT id FROM iv WHERE lower >= :a AND upper <= :b ORDER BY id", 30, 90)
			if err != nil {
				t.Fatal(err)
			}
			got := collect(t, rows)
			if len(got) == 0 {
				t.Fatal("no rows")
			}
			// Named args work too and give the same result.
			rows, err = db.Query("SELECT id FROM iv WHERE lower >= :a AND upper <= :b ORDER BY id",
				sql.Named("a", 30), sql.Named("b", 90))
			if err != nil {
				t.Fatal(err)
			}
			if named := collect(t, rows); fmt.Sprint(named) != fmt.Sprint(got) {
				t.Fatalf("named args disagree: %v vs %v", named, got)
			}

			// DML result counts.
			res := mustExecSQL(t, db, "DELETE FROM iv WHERE id = :id", 0)
			if n, _ := res.RowsAffected(); n != 1 {
				t.Fatalf("affected = %d", n)
			}

			// EXPLAIN through Query: one text "plan" column.
			var plan string
			prows, err := db.Query("EXPLAIN SELECT id FROM iv WHERE intersects(lower, upper, 10, 20)")
			if err != nil {
				t.Fatal(err)
			}
			for prows.Next() {
				var line string
				if err := prows.Scan(&line); err != nil {
					t.Fatal(err)
				}
				plan += line + "\n"
			}
			prows.Close()
			if !strings.Contains(plan, "SELECT STATEMENT") {
				t.Fatalf("EXPLAIN plan missing header:\n%s", plan)
			}

			// Unsupported bind types error cleanly.
			if _, err := db.Query("SELECT id FROM iv WHERE id = :x", "nope"); err == nil {
				t.Fatal("string bind accepted")
			}
		})
	}
}

// TestRemoteEmbeddedParity runs the same statements against the wire and
// against the server's own DB embedded, asserting identical rows —
// including every ALLEN_* operator.
func TestRemoteEmbeddedParity(t *testing.T) {
	rdb, dsn := startServer(t)
	db := openSQL(t, dsn)
	seed(t, db)

	queries := []string{
		"SELECT id FROM iv WHERE intersects(lower, upper, 100, 160) ORDER BY id",
		"SELECT count(*) FROM iv",
		"SELECT id, upper FROM iv WHERE lower >= :a ORDER BY upper DESC, id LIMIT 10",
		"SELECT DISTINCT upper FROM iv WHERE lower < :a ORDER BY upper",
		"SELECT id FROM iv WHERE id < 5 UNION ALL SELECT id FROM iv WHERE id >= 195 ORDER BY id",
	}
	for _, op := range []string{
		"equals", "before", "after", "meets", "met_by",
		"overlaps", "overlapped_by", "during", "contains",
		"starts", "started_by", "finishes", "finished_by",
	} {
		queries = append(queries,
			fmt.Sprintf("SELECT id FROM iv WHERE allen_%s(lower, upper, 99, 111) ORDER BY id", op))
	}

	for _, q := range queries {
		var args []interface{}
		binds := map[string]interface{}{}
		if strings.Contains(q, ":a") {
			args = append(args, 150)
			binds["a"] = int64(150)
		}
		rows, err := db.Query(q, args...)
		if err != nil {
			t.Fatalf("wire %s: %v", q, err)
		}
		gotWire := collect(t, rows)

		erows, err := rdb.Query(context.Background(), q, binds)
		if err != nil {
			t.Fatalf("embedded %s: %v", q, err)
		}
		var gotEmb [][]int64
		for erows.Next() {
			row := erows.Row()
			cp := make([]int64, len(row))
			copy(cp, row)
			gotEmb = append(gotEmb, cp)
		}
		if err := erows.Err(); err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(gotWire) != fmt.Sprint(gotEmb) {
			t.Fatalf("%s: wire %v != embedded %v", q, gotWire, gotEmb)
		}
	}
}

// TestLimitStopsServerScan asserts the wire path keeps streaming
// semantics: a LIMIT-3 SELECT over 200 rows does O(3) leaf work
// server-side, not a full materialization.
func TestLimitStopsServerScan(t *testing.T) {
	rdb, dsn := startServer(t)
	db := openSQL(t, dsn)
	seed(t, db)

	before := rdb.Metrics().Counter("sql.leaf_rows")
	rows, err := db.Query("SELECT id FROM iv LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, rows)
	leaf := rdb.Metrics().Counter("sql.leaf_rows") - before
	if len(got) != 3 {
		t.Fatalf("rows = %d", len(got))
	}
	if leaf >= 200 {
		t.Fatalf("LIMIT 3 scanned %d leaf rows server-side", leaf)
	}
}

// TestCancellationReleasesCursor cancels a streaming query mid-stream
// and asserts the server-side cursor — and with it the pinned snapshot
// view — is released (sql.views.active drains to <= 1: the engine keeps
// at most the cached current view).
func TestCancellationReleasesCursor(t *testing.T) {
	rdb, dsn := startServer(t)
	db := openSQL(t, dsn)
	seed(t, db)

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := db.QueryContext(ctx, "SELECT id FROM iv")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no first row")
	}
	cancel()
	rows.Close()

	deadline := time.Now().Add(2 * time.Second)
	for {
		if active := rdb.Metrics().Gauges["sql.views.active"]; active <= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("views still pinned after cancel: %d",
				rdb.Metrics().Gauges["sql.views.active"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPreparedReuseAcrossTransactions reuses one prepared statement
// inside and outside transactions and asserts the server's plan cache
// served the repeats.
func TestPreparedReuseAcrossTransactions(t *testing.T) {
	rdb, dsn := startServer(t)
	db := openSQL(t, dsn)
	db.SetMaxOpenConns(1) // keep one session so the txn and stmt share it
	seed(t, db)

	stmt, err := db.Prepare("SELECT id FROM iv WHERE lower >= :a ORDER BY id LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	runOnce := func(q func(args ...interface{}) (*sql.Rows, error)) int {
		rows, err := q(60)
		if err != nil {
			t.Fatal(err)
		}
		return len(collect(t, rows))
	}

	n1 := runOnce(stmt.Query)
	hits0, _, _, _ := rdb.PlanCacheStats()

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	n2 := runOnce(tx.Stmt(stmt).Query)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	n3 := runOnce(stmt.Query)
	if n1 != 5 || n2 != 5 || n3 != 5 {
		t.Fatalf("row counts %d/%d/%d", n1, n2, n3)
	}
	hits1, _, _, _ := rdb.PlanCacheStats()
	if hits1 <= hits0 {
		t.Fatalf("prepared reuse missed the plan cache: hits %d -> %d", hits0, hits1)
	}
}

// TestTxnConflictOverWire provokes a first-committer-wins conflict and
// asserts the database/sql error satisfies errors.Is(ritree.ErrTxnConflict)
// through the wire.
func TestTxnConflictOverWire(t *testing.T) {
	rdb, dsn := startServer(t)
	db := openSQL(t, dsn)
	db.SetMaxOpenConns(2)
	seed(t, db)

	// SQL writes join the open transaction, so the conflicting writer is
	// a programmatic collection insert — exactly the auto-commit path the
	// engine's first-committer-wins check detects.
	col, err := rdb.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO resv VALUES (30, 40, 2)"); err != nil {
		t.Fatal(err)
	}
	if err := col.Insert(ritree.NewInterval(50, 60), 3); err != nil {
		t.Fatal(err)
	}
	err = tx.Commit()
	if !errors.Is(err, ritree.ErrTxnConflict) {
		t.Fatalf("commit error = %v, want ErrTxnConflict", err)
	}
}

// TestEmbeddedTxnConflict: same conflict through the mem:// DSN, with
// the native DB reached through Connector.DB for the concurrent writer.
func TestEmbeddedTxnConflict(t *testing.T) {
	connector, err := (&ritreedriver.Driver{}).OpenConnector("mem://")
	if err != nil {
		t.Fatal(err)
	}
	db := sql.OpenDB(connector)
	t.Cleanup(func() { db.Close() })
	rdb, err := connector.(*ritreedriver.Connector).DB()
	if err != nil {
		t.Fatal(err)
	}
	col, err := rdb.CreateCollection("resv")
	if err != nil {
		t.Fatal(err)
	}

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("INSERT INTO resv VALUES (30, 40, 2)"); err != nil {
		t.Fatal(err)
	}
	if err := col.Insert(ritree.NewInterval(50, 60), 3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ritree.ErrTxnConflict) {
		t.Fatalf("commit error = %v, want ErrTxnConflict", err)
	}
}

// TestConcurrentConnections interleaves readers and writers over many
// wire connections (run under -race in CI).
func TestConcurrentConnections(t *testing.T) {
	_, dsn := startServer(t)
	db := openSQL(t, dsn)
	db.SetMaxOpenConns(8)
	seed(t, db)

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(2)
		go func(g int) { // reader
			defer wg.Done()
			for i := 0; i < 25; i++ {
				rows, err := db.Query("SELECT id FROM iv WHERE lower >= :a LIMIT 7", g*10+i)
				if err != nil {
					errCh <- err
					return
				}
				rows.Close()
			}
		}(g)
		go func(g int) { // writer
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := int64(10000 + g*100 + i)
				if _, err := db.Exec("INSERT INTO iv VALUES (:lo, :hi, :id)", id, id+5, id); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT count(*) FROM iv").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 200+4*25 {
		t.Fatalf("count = %d, want %d", n, 200+4*25)
	}
}

// TestServerMetricsViaRaw reaches ServerMetrics through sql.Conn.Raw —
// the path risql -connect's \metrics uses.
func TestServerMetricsViaRaw(t *testing.T) {
	_, dsn := startServer(t)
	db := openSQL(t, dsn)
	seed(t, db)

	conn, err := db.Conn(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var js string
	err = conn.Raw(func(dc interface{}) error {
		mf, ok := dc.(ritreedriver.MetricsFetcher)
		if !ok {
			return fmt.Errorf("conn does not implement MetricsFetcher")
		}
		var merr error
		js, merr = mf.ServerMetrics()
		return merr
	})
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(js), &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, js)
	}
	if snap.Counters["server.connections"] == 0 {
		t.Fatalf("no server.connections in %s", js)
	}
}

// TestSessionTeardownMidStream kills a raw TCP connection with an open
// cursor and an open transaction, then asserts the server released the
// pinned snapshot views and freed the engine's transaction slot.
func TestSessionTeardownMidStream(t *testing.T) {
	rdb, dsn := startServer(t)
	db := openSQL(t, dsn)
	seed(t, db)

	// Speak the protocol by hand so we can sever the socket mid-stream.
	conn, err := net.Dial("tcp", strings.TrimPrefix(dsn, "tcp://"))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	send := func(typ byte, payload []byte) (byte, []byte) {
		t.Helper()
		if err := wire.WriteFrame(conn, typ, payload); err != nil {
			t.Fatal(err)
		}
		rtyp, rp, err := wire.ReadFrame(br)
		if err != nil {
			t.Fatal(err)
		}
		if rtyp == wire.MsgErr {
			t.Fatalf("server error: %v", wire.DecodeErr(rp))
		}
		return rtyp, rp
	}
	send(wire.MsgHello, wire.AppendUvarint(nil, wire.ProtoVersion))
	send(wire.MsgExec, wire.AppendBinds(wire.AppendString(nil, "BEGIN"), nil))
	b := wire.AppendString(nil, "SELECT id FROM iv")
	b = wire.AppendBinds(b, nil)
	send(wire.MsgQuery, b)
	// One bounded fetch so the cursor is genuinely mid-stream.
	fb := wire.AppendUvarint(nil, 1)
	fb = wire.AppendUvarint(fb, 4)
	send(wire.MsgFetch, fb)

	pinnedBefore := rdb.Metrics().Gauges["sql.views.active"]
	if pinnedBefore < 1 {
		t.Fatalf("expected a pinned view mid-stream, gauge = %d", pinnedBefore)
	}
	conn.Close() // sever mid-stream: teardown must clean up

	deadline := time.Now().Add(2 * time.Second)
	for {
		views := rdb.Metrics().Gauges["sql.views.active"]
		// The transaction slot is free once a new BEGIN succeeds.
		_, berr := rdb.Exec("BEGIN", nil)
		if berr == nil {
			rdb.Exec("ROLLBACK", nil)
		}
		if views <= 1 && berr == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("teardown leaked: views=%d beginErr=%v", views, berr)
		}
		time.Sleep(10 * time.Millisecond)
	}
	_ = db
}

// TestGracefulShutdownDrains shuts a server down while sessions hold
// open cursors and asserts Shutdown returns with the database quiescent.
func TestGracefulShutdownDrains(t *testing.T) {
	rdb, err := ritree.OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	srv := server.New(rdb, server.Options{Logf: t.Logf})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	db := openSQL(t, "tcp://"+ln.Addr().String())
	mustExecSQL(t, db, "CREATE TABLE t (a int)")
	for i := 0; i < 50; i++ {
		mustExecSQL(t, db, "INSERT INTO t VALUES (:a)", i)
	}
	rows, err := db.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal(err)
	}
	rows.Close()
	if views := rdb.Metrics().Gauges["sql.views.active"]; views > 1 {
		t.Fatalf("views pinned after shutdown: %d", views)
	}
}
