package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"fmt"
	"io"
	"strings"

	"ritree/internal/sqldb"
)

// backend is what a connection runs statements through: the wire client
// (remote) or a shared in-process DB (embedded). Both surface the same
// error values — in particular, a conflicting COMMIT satisfies
// errors.Is(err, ritree.ErrTxnConflict) from either side.
type backend interface {
	query(ctx context.Context, sql string, binds map[string]interface{}) (sqldriver.Rows, error)
	exec(ctx context.Context, sql string, binds map[string]interface{}) (affected int64, plan string, err error)
	// prepare reserves backend-side statement state: the remote backend
	// parses server-side and executes by statement ID, the embedded one
	// re-submits the text (the engine's plan cache keys on it).
	prepare(sql string) (preparedStmt, error)
	ping(ctx context.Context) error
	metrics() (string, error)
	close() error
}

// preparedStmt executes one prepared statement.
type preparedStmt interface {
	queryStmt(ctx context.Context, binds map[string]interface{}) (sqldriver.Rows, error)
	execStmt(ctx context.Context, binds map[string]interface{}) (affected int64, plan string, err error)
	close() error
}

// conn is one database/sql connection.
type conn struct {
	be     backend
	closed bool
}

var (
	_ sqldriver.Conn               = (*conn)(nil)
	_ sqldriver.QueryerContext     = (*conn)(nil)
	_ sqldriver.ExecerContext      = (*conn)(nil)
	_ sqldriver.ConnPrepareContext = (*conn)(nil)
	_ sqldriver.ConnBeginTx        = (*conn)(nil)
	_ sqldriver.Pinger             = (*conn)(nil)
	_ MetricsFetcher               = (*conn)(nil)
)

func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.Background(), query)
}

func (c *conn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	if c.closed {
		return nil, sqldriver.ErrBadConn
	}
	// Bind names come from the lexer so positional args have a stable
	// order; parsing up front surfaces syntax errors at Prepare time.
	st, err := sqldb.Parse(query)
	if err != nil {
		return nil, err
	}
	names, err := sqldb.BindNames(query)
	if err != nil {
		return nil, err
	}
	ps, err := c.be.prepare(query)
	if err != nil {
		return nil, err
	}
	_, isExplain := st.(*sqldb.ExplainStmt)
	return &stmt{c: c, ps: ps, bindNames: names, isExplain: isExplain}, nil
}

func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if c.closed {
		return nil, sqldriver.ErrBadConn
	}
	names, err := sqldb.BindNames(query)
	if err != nil {
		return nil, err
	}
	binds, err := buildBinds(names, args)
	if err != nil {
		return nil, err
	}
	return c.query(ctx, query, binds)
}

// query routes one statement: EXPLAIN synthesizes a text result from the
// exec path, everything else opens a streaming cursor.
func (c *conn) query(ctx context.Context, query string, binds map[string]interface{}) (sqldriver.Rows, error) {
	if st, err := sqldb.Parse(query); err == nil {
		if _, isExplain := st.(*sqldb.ExplainStmt); isExplain {
			_, plan, err := c.be.exec(ctx, query, binds)
			if err != nil {
				return nil, err
			}
			return planRows(plan), nil
		}
	}
	return c.be.query(ctx, query, binds)
}

func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if c.closed {
		return nil, sqldriver.ErrBadConn
	}
	names, err := sqldb.BindNames(query)
	if err != nil {
		return nil, err
	}
	binds, err := buildBinds(names, args)
	if err != nil {
		return nil, err
	}
	affected, _, err := c.be.exec(ctx, query, binds)
	if err != nil {
		return nil, err
	}
	return result(affected), nil
}

func (c *conn) Begin() (sqldriver.Tx, error) {
	return c.BeginTx(context.Background(), sqldriver.TxOptions{})
}

func (c *conn) BeginTx(ctx context.Context, opts sqldriver.TxOptions) (sqldriver.Tx, error) {
	if c.closed {
		return nil, sqldriver.ErrBadConn
	}
	if opts.Isolation != 0 {
		return nil, fmt.Errorf("ritree driver: only the default isolation level is supported")
	}
	if opts.ReadOnly {
		return nil, fmt.Errorf("ritree driver: read-only transactions are not supported")
	}
	if _, _, err := c.be.exec(ctx, "BEGIN", nil); err != nil {
		return nil, err
	}
	return &tx{c: c}, nil
}

func (c *conn) Ping(ctx context.Context) error {
	if c.closed {
		return sqldriver.ErrBadConn
	}
	return c.be.ping(ctx)
}

// ServerMetrics implements MetricsFetcher (see sql.Conn.Raw).
func (c *conn) ServerMetrics() (string, error) {
	if c.closed {
		return "", sqldriver.ErrBadConn
	}
	return c.be.metrics()
}

func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	return c.be.close()
}

// stmt is a prepared statement. The plan work it saves lives in the
// engine's plan cache (keyed by statement text), so the handle itself
// only pins the parsed bind-name order — it stays valid across
// transactions and DDL, re-planning transparently when the cache was
// invalidated.
type stmt struct {
	c         *conn
	ps        preparedStmt
	bindNames []string
	isExplain bool
}

func (s *stmt) Close() error {
	if s.ps == nil {
		return nil
	}
	ps := s.ps
	s.ps = nil
	return ps.close()
}

func (s *stmt) NumInput() int { return len(s.bindNames) }

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.Background(), namedValues(args))
}

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.Background(), namedValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	binds, err := buildBinds(s.bindNames, args)
	if err != nil {
		return nil, err
	}
	affected, _, err := s.ps.execStmt(ctx, binds)
	if err != nil {
		return nil, err
	}
	return result(affected), nil
}

func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	binds, err := buildBinds(s.bindNames, args)
	if err != nil {
		return nil, err
	}
	if s.isExplain {
		_, plan, err := s.ps.execStmt(ctx, binds)
		if err != nil {
			return nil, err
		}
		return planRows(plan), nil
	}
	return s.ps.queryStmt(ctx, binds)
}

// tx maps sql.Tx onto the engine's explicit transaction.
type tx struct{ c *conn }

func (t *tx) Commit() error {
	_, _, err := t.c.be.exec(context.Background(), "COMMIT", nil)
	return err
}

func (t *tx) Rollback() error {
	_, _, err := t.c.be.exec(context.Background(), "ROLLBACK", nil)
	return err
}

// result carries the affected-row count; the engine has no insert IDs.
type result int64

func (r result) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("ritree driver: LastInsertId is not supported")
}
func (r result) RowsAffected() (int64, error) { return int64(r), nil }

// buildBinds maps driver args onto the engine's named binds: positional
// args take the statement's distinct bind names in first-appearance
// order, named args (sql.Named) match directly.
func buildBinds(bindNames []string, args []sqldriver.NamedValue) (map[string]interface{}, error) {
	if len(args) == 0 {
		return nil, nil
	}
	binds := make(map[string]interface{}, len(args))
	for _, a := range args {
		name := strings.ToLower(a.Name)
		if name == "" {
			if a.Ordinal < 1 || a.Ordinal > len(bindNames) {
				return nil, fmt.Errorf("ritree driver: %d args for %d bind variables",
					len(args), len(bindNames))
			}
			name = bindNames[a.Ordinal-1]
		}
		v, ok := a.Value.(int64)
		if !ok {
			return nil, fmt.Errorf("ritree driver: bind :%s has unsupported type %T (values are int64)",
				name, a.Value)
		}
		binds[name] = v
	}
	return binds, nil
}

// namedValues adapts the pre-context Stmt call shape.
func namedValues(args []sqldriver.Value) []sqldriver.NamedValue {
	nvs := make([]sqldriver.NamedValue, len(args))
	for i, v := range args {
		nvs[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return nvs
}

// staticRows serves a fully materialized result (EXPLAIN plans).
type staticRows struct {
	cols []string
	rows [][]sqldriver.Value
	pos  int
}

func planRows(plan string) *staticRows {
	lines := strings.Split(strings.TrimRight(plan, "\n"), "\n")
	sr := &staticRows{cols: []string{"plan"}}
	for _, ln := range lines {
		sr.rows = append(sr.rows, []sqldriver.Value{ln})
	}
	return sr
}

func (r *staticRows) Columns() []string { return r.cols }
func (r *staticRows) Close() error      { return nil }

func (r *staticRows) Next(dest []sqldriver.Value) error {
	if r.pos >= len(r.rows) {
		return io.EOF
	}
	copy(dest, r.rows[r.pos])
	r.pos++
	return nil
}
