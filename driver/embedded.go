package driver

import (
	"context"
	sqldriver "database/sql/driver"
	"encoding/json"
	"io"

	"ritree"
)

// embedded runs statements directly against a shared in-process DB (the
// mem:// and file:// DSNs). Engine errors pass through unchanged, so
// ErrTxnConflict is errors.Is-able without any mapping.
type embedded struct {
	db *ritree.DB
}

func (e *embedded) query(ctx context.Context, sql string, binds map[string]interface{}) (sqldriver.Rows, error) {
	rows, err := e.db.Query(ctx, sql, binds)
	if err != nil {
		return nil, err
	}
	return &embeddedRows{rows: rows}, nil
}

func (e *embedded) exec(_ context.Context, sql string, binds map[string]interface{}) (int64, string, error) {
	res, err := e.db.Exec(sql, binds)
	if err != nil {
		return 0, "", err
	}
	return res.Affected, res.Plan, nil
}

// prepare keeps no embedded-side state beyond the text: the engine's
// plan cache keys on it, so re-submitting is the prepared fast path.
func (e *embedded) prepare(sql string) (preparedStmt, error) {
	return &embeddedStmt{be: e, sql: sql}, nil
}

func (e *embedded) ping(context.Context) error { return nil }

func (e *embedded) metrics() (string, error) {
	js, err := json.Marshal(e.db.Metrics())
	return string(js), err
}

// close is a no-op: the Connector owns the shared DB.
func (e *embedded) close() error { return nil }

// embeddedStmt re-submits the statement text per execution.
type embeddedStmt struct {
	be  *embedded
	sql string
}

func (s *embeddedStmt) queryStmt(ctx context.Context, binds map[string]interface{}) (sqldriver.Rows, error) {
	return s.be.query(ctx, s.sql, binds)
}

func (s *embeddedStmt) execStmt(ctx context.Context, binds map[string]interface{}) (int64, string, error) {
	return s.be.exec(ctx, s.sql, binds)
}

func (s *embeddedStmt) close() error { return nil }

// embeddedRows adapts the engine's streaming cursor.
type embeddedRows struct {
	rows *ritree.Rows
}

func (r *embeddedRows) Columns() []string { return r.rows.Columns() }

func (r *embeddedRows) Next(dest []sqldriver.Value) error {
	if !r.rows.Next() {
		if err := r.rows.Err(); err != nil {
			return err
		}
		return io.EOF
	}
	for i, v := range r.rows.Row() {
		dest[i] = v
	}
	return nil
}

func (r *embeddedRows) Close() error { return r.rows.Close() }
