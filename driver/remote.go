package driver

import (
	"bufio"
	"context"
	sqldriver "database/sql/driver"
	"fmt"
	"io"
	"net"
	"sync"

	"ritree"
	"ritree/internal/wire"
)

// fetchBatch is how many rows a remote cursor pulls per Fetch round
// trip: large enough to amortize the round trip, small enough that a
// LIMIT-k client stops the server-side scan after O(k) leaf rows.
const fetchBatch = 512

// remote is the wire-protocol client backend behind a tcp:// DSN. The
// protocol is strict lockstep, so one mutex serializes round trips; an
// open cursor interleaves its Fetch round trips with other statements on
// the same connection because every request names its cursor.
type remote struct {
	mu     sync.Mutex
	conn   net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	broken bool
}

// dialRemote connects and performs the Hello handshake.
func dialRemote(ctx context.Context, addr string) (*remote, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &remote{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
	typ, payload, err := r.roundTrip(wire.MsgHello, wire.AppendUvarint(nil, wire.ProtoVersion))
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ != wire.MsgHelloOK {
		conn.Close()
		return nil, fmt.Errorf("ritree driver: unexpected handshake response %#x", typ)
	}
	_ = payload
	return r, nil
}

// roundTrip sends one request and reads its response. A transport
// failure poisons the connection: database/sql discards it and dials a
// fresh one. Server-reported errors (MsgErr) come back as Go errors with
// the connection intact.
func (r *remote) roundTrip(typ byte, payload []byte) (byte, []byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.roundTripLocked(typ, payload)
}

func (r *remote) roundTripLocked(typ byte, payload []byte) (byte, []byte, error) {
	if r.broken {
		return 0, nil, sqldriver.ErrBadConn
	}
	if err := wire.WriteFrame(r.bw, typ, payload); err != nil {
		r.broken = true
		return 0, nil, err
	}
	if err := r.bw.Flush(); err != nil {
		r.broken = true
		return 0, nil, err
	}
	rtyp, rpayload, err := wire.ReadFrame(r.br)
	if err != nil {
		r.broken = true
		return 0, nil, err
	}
	if rtyp == wire.MsgErr {
		return 0, nil, mapWireErr(wire.DecodeErr(rpayload))
	}
	return rtyp, rpayload, nil
}

// mapWireErr reconstructs sentinel errors from protocol codes.
func mapWireErr(err error) error {
	if we, ok := err.(*wire.WireError); ok && we.Code == wire.CodeTxnConflict {
		return fmt.Errorf("%s: %w", we.Msg, ritree.ErrTxnConflict)
	}
	return err
}

func toWireBinds(binds map[string]interface{}) map[string]int64 {
	if len(binds) == 0 {
		return nil
	}
	out := make(map[string]int64, len(binds))
	for k, v := range binds {
		out[k] = v.(int64) // buildBinds admitted int64 only
	}
	return out
}

func (r *remote) query(ctx context.Context, sql string, binds map[string]interface{}) (sqldriver.Rows, error) {
	b := wire.AppendString(nil, sql)
	b = wire.AppendBinds(b, toWireBinds(binds))
	return r.openCursor(wire.MsgQuery, b)
}

// openCursor sends a Query/StmtQuery and wraps the resulting RowHeader.
func (r *remote) openCursor(typ byte, payload []byte) (sqldriver.Rows, error) {
	rtyp, rp, err := r.roundTrip(typ, payload)
	if err != nil {
		return nil, err
	}
	if rtyp != wire.MsgRowHeader {
		return nil, fmt.Errorf("ritree driver: unexpected response %#x to query", rtyp)
	}
	rd := wire.NewReader(rp)
	cursorID := rd.Uvarint()
	cols := rd.Strings()
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	return &remoteRows{r: r, cursorID: cursorID, cols: cols}, nil
}

func (r *remote) exec(_ context.Context, sql string, binds map[string]interface{}) (int64, string, error) {
	b := wire.AppendString(nil, sql)
	b = wire.AppendBinds(b, toWireBinds(binds))
	return r.decodeExecOK(r.roundTrip(wire.MsgExec, b))
}

func (r *remote) decodeExecOK(typ byte, payload []byte, err error) (int64, string, error) {
	if err != nil {
		return 0, "", err
	}
	if typ != wire.MsgExecOK {
		return 0, "", fmt.Errorf("ritree driver: unexpected response %#x to exec", typ)
	}
	rd := wire.NewReader(payload)
	affected := rd.Varint()
	plan := rd.String()
	if rd.Err() != nil {
		return 0, "", rd.Err()
	}
	return affected, plan, nil
}

// prepare parses server-side; execution then travels by statement ID.
func (r *remote) prepare(sql string) (preparedStmt, error) {
	typ, payload, err := r.roundTrip(wire.MsgParse, wire.AppendString(nil, sql))
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgParseOK {
		return nil, fmt.Errorf("ritree driver: unexpected response %#x to parse", typ)
	}
	rd := wire.NewReader(payload)
	id := rd.Uvarint()
	rd.Strings() // server's bind-name view; the conn derives its own
	if rd.Err() != nil {
		return nil, rd.Err()
	}
	return &remoteStmt{r: r, id: id}, nil
}

func (r *remote) ping(context.Context) error {
	typ, _, err := r.roundTrip(wire.MsgPing, nil)
	if err != nil {
		return err
	}
	if typ != wire.MsgPong {
		return fmt.Errorf("ritree driver: unexpected response %#x to ping", typ)
	}
	return nil
}

func (r *remote) metrics() (string, error) {
	typ, payload, err := r.roundTrip(wire.MsgMetrics, nil)
	if err != nil {
		return "", err
	}
	if typ != wire.MsgMetricsData {
		return "", fmt.Errorf("ritree driver: unexpected response %#x to metrics", typ)
	}
	rd := wire.NewReader(payload)
	js := rd.String()
	return js, rd.Err()
}

func (r *remote) close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.broken {
		// Best-effort goodbye; the server also tears down cleanly on EOF.
		wire.WriteFrame(r.bw, wire.MsgTerminate, nil)
		r.bw.Flush()
	}
	r.broken = true
	return r.conn.Close()
}

// remoteStmt executes by server-side statement ID.
type remoteStmt struct {
	r  *remote
	id uint64
}

func (s *remoteStmt) queryStmt(ctx context.Context, binds map[string]interface{}) (sqldriver.Rows, error) {
	b := wire.AppendUvarint(nil, s.id)
	b = wire.AppendBinds(b, toWireBinds(binds))
	return s.r.openCursor(wire.MsgStmtQuery, b)
}

func (s *remoteStmt) execStmt(_ context.Context, binds map[string]interface{}) (int64, string, error) {
	b := wire.AppendUvarint(nil, s.id)
	b = wire.AppendBinds(b, toWireBinds(binds))
	return s.r.decodeExecOK(s.r.roundTrip(wire.MsgStmtExec, b))
}

func (s *remoteStmt) close() error {
	typ, _, err := s.r.roundTrip(wire.MsgCloseStmt, wire.AppendUvarint(nil, s.id))
	if err != nil {
		if err == sqldriver.ErrBadConn {
			return nil // connection already gone; server tore the stmt down
		}
		return err
	}
	if typ != wire.MsgOK {
		return fmt.Errorf("ritree driver: unexpected response %#x to close-stmt", typ)
	}
	return nil
}

// remoteRows streams a server-side cursor in Fetch-sized batches.
type remoteRows struct {
	r        *remote
	cursorID uint64
	cols     []string
	buf      [][]int64
	pos      int
	done     bool
}

func (rr *remoteRows) Columns() []string { return rr.cols }

func (rr *remoteRows) Next(dest []sqldriver.Value) error {
	for rr.pos >= len(rr.buf) {
		if rr.done {
			return io.EOF
		}
		if err := rr.fetch(); err != nil {
			return err
		}
	}
	for i, v := range rr.buf[rr.pos] {
		dest[i] = v
	}
	rr.pos++
	return nil
}

func (rr *remoteRows) fetch() error {
	b := wire.AppendUvarint(nil, rr.cursorID)
	b = wire.AppendUvarint(b, fetchBatch)
	typ, payload, err := rr.r.roundTrip(wire.MsgFetch, b)
	if err != nil {
		rr.done = true
		return err
	}
	if typ != wire.MsgRowBatch {
		rr.done = true
		return fmt.Errorf("ritree driver: unexpected response %#x to fetch", typ)
	}
	rows, done, err := wire.DecodeRowBatch(payload, len(rr.cols))
	if err != nil {
		rr.done = true
		return err
	}
	rr.buf, rr.pos, rr.done = rows, 0, done
	return nil
}

// Close releases the server-side cursor (and with it the pinned
// snapshot) unless the stream already finished — the final batch closes
// it server-side.
func (rr *remoteRows) Close() error {
	if rr.done {
		return nil
	}
	rr.done = true
	typ, _, err := rr.r.roundTrip(wire.MsgCloseCursor, wire.AppendUvarint(nil, rr.cursorID))
	if err != nil {
		if err == sqldriver.ErrBadConn {
			return nil
		}
		return err
	}
	if typ != wire.MsgOK {
		return fmt.Errorf("ritree driver: unexpected response %#x to close-cursor", typ)
	}
	return nil
}
