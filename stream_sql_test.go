package ritree

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"

	"ritree/internal/interval"
)

// sqlAllenOp returns the SQL operator name of r (ALLEN_FINISHED_BY etc.).
func sqlAllenOp(r Relation) string {
	return "allen_" + strings.ReplaceAll(r.String(), "-", "_")
}

// TestAllenSQLCrosscheckMatrix verifies the acceptance matrix: all
// thirteen ALLEN_* SQL operators return exactly the ids the materialized
// Collection.Query baseline returns, on every built-in access method.
// The data space is deliberately tiny so shared endpoints (meets,
// starts, finishes, equals) occur often.
func TestAllenSQLCrosscheckMatrix(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(7))
	var ivs []Interval
	var ids []int64
	for i := 0; i < 300; i++ {
		lo := int64(rng.Intn(60))
		hi := lo + int64(rng.Intn(20))
		ivs = append(ivs, NewInterval(lo, hi))
		ids = append(ids, int64(i+1))
	}
	// Edge shapes: duplicates of the query intervals, points, containers.
	for i, iv := range []Interval{NewInterval(20, 30), NewInterval(20, 30), Point(25), NewInterval(0, 90), NewInterval(30, 42)} {
		ivs = append(ivs, iv)
		ids = append(ids, int64(1000+i))
	}
	queries := []Interval{NewInterval(20, 30), Point(25), NewInterval(0, 5), NewInterval(55, 90)}

	for _, method := range []string{AccessMethodRITree, AccessMethodHINT, AccessMethodHINTSharded} {
		c, err := db.CreateCollection("m_"+method, AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.BulkLoad(ivs, ids); err != nil {
			t.Fatal(err)
		}
		for r := Relation(0); int(r) < interval.NumRelations; r++ {
			for _, q := range queries {
				want, err := c.Query(r, q)
				if err != nil {
					t.Fatal(err)
				}
				sql := fmt.Sprintf("SELECT id FROM m_%s WHERE %s(lower, upper, :a, :b)", method, sqlAllenOp(r))
				rows, err := db.Query(context.Background(), sql,
					map[string]interface{}{"a": q.Lower, "b": q.Upper})
				if err != nil {
					t.Fatalf("%s %s: %v", method, sqlAllenOp(r), err)
				}
				var got []int64
				for rows.Next() {
					got = append(got, rows.Row()[0])
				}
				if err := rows.Err(); err != nil {
					t.Fatalf("%s %s: %v", method, sqlAllenOp(r), err)
				}
				slices.Sort(got)
				if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
					t.Fatalf("%s: %s(%v) via SQL = %v, Collection.Query = %v",
						method, sqlAllenOp(r), q, got, want)
				}
			}
		}
		// The plan must route through the domain index's generating-region
		// scan, not a full table scan.
		plan, err := db.Exec(fmt.Sprintf(
			"EXPLAIN SELECT id FROM m_%s WHERE allen_during(lower, upper, 20, 30)", method), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(plan.Plan, "VIA INTERSECTS REGION") {
			t.Fatalf("%s: ALLEN plan is not index-served:\n%s", method, plan.Plan)
		}
	}
}

// TestAllenSQLNowRelative checks that the SQL residual maps now-relative
// rows (§4.6) through the access method's clock like Collection.Query.
func TestAllenSQLNowRelative(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("nowc") // ritree: the NowKeeper method
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertNow(10, 1); err != nil { // effective [10, now]
		t.Fatal(err)
	}
	if err := c.SetNow(30); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		rel  Relation
		q    Interval
		want int
	}{
		{FinishedBy, NewInterval(20, 30), 1}, // [10,30] finished-by [20,30]
		{Before, NewInterval(40, 50), 1},
		{During, NewInterval(0, 100), 1},
	} {
		want, err := c.Query(tc.rel, tc.q)
		if err != nil {
			t.Fatal(err)
		}
		if len(want) != tc.want {
			t.Fatalf("baseline %s = %v, want %d ids", tc.rel, want, tc.want)
		}
		r, err := db.Exec(fmt.Sprintf("SELECT id FROM nowc WHERE %s(lower, upper, %d, %d)",
			sqlAllenOp(tc.rel), tc.q.Lower, tc.q.Upper), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(r.Rows) != tc.want {
			t.Fatalf("SQL %s over now-relative row = %v, want %d rows", tc.rel, r.Rows, tc.want)
		}
	}

	// Two Allen conjuncts: the first drives the index scan, the second
	// compiles to the residual fallback — which must resolve the
	// NowMarker through the same clock, or the answer would depend on
	// conjunct order. Effective row is [10, 30].
	r, err := db.Exec(
		"SELECT id FROM nowc WHERE allen_during(lower, upper, 0, 100) AND allen_finished_by(lower, upper, 20, 30)", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0] != 1 {
		t.Fatalf("residual Allen conjunct over now-relative row = %v, want [[1]]", r.Rows)
	}
}

// TestStreamingLimitMillionRows is the acceptance check for O(k) LIMIT
// work: over a million-row collection, SELECT ... LIMIT k pulls only k
// leaf rows from the access-method scan.
func TestStreamingLimitMillionRows(t *testing.T) {
	if testing.Short() {
		t.Skip("million-row load in -short mode")
	}
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("big", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1_000_000
	ivs := make([]Interval, n)
	ids := make([]int64, n)
	rng := rand.New(rand.NewSource(3))
	for i := range ivs {
		lo := int64(rng.Intn(1 << 20))
		ivs[i] = NewInterval(lo, lo+int64(rng.Intn(2000)))
		ids[i] = int64(i)
	}
	if err := c.BulkLoad(ivs, ids); err != nil {
		t.Fatal(err)
	}
	const k = 5
	rows, err := db.Query(context.Background(),
		fmt.Sprintf("SELECT id FROM big WHERE intersects(lower, upper, :a, :b) LIMIT %d", k),
		map[string]interface{}{"a": 1000, "b": 600000})
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	got := 0
	for rows.Next() {
		got++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if got != k {
		t.Fatalf("LIMIT %d returned %d rows", k, got)
	}
	if st := rows.Stats(); st.LeafRows > k {
		t.Fatalf("LIMIT %d over %d rows pulled %d leaf rows — the scan did not stop early", k, n, st.LeafRows)
	}
}

// TestDBQueryCancelReachesScan cancels a DB.Query mid-iteration and
// checks the cursor surfaces the context error and releases the lock.
func TestDBQueryCancelReachesScan(t *testing.T) {
	db, err := OpenMemory()
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	c, err := db.CreateCollection("spans", AccessMethod(AccessMethodHINT))
	if err != nil {
		t.Fatal(err)
	}
	var rows []IntervalRow
	for i := 0; i < 5000; i++ {
		rows = append(rows, IntervalRow{NewInterval(int64(i), int64(i+10)), int64(i)})
	}
	if err := c.InsertMany(rows); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cur, err := db.Query(ctx, "SELECT id FROM spans WHERE intersects(lower, upper, 0, 100000)", nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for cur.Next() {
		seen++
		if seen == 3 {
			cancel()
		}
	}
	if cur.Err() != context.Canceled {
		t.Fatalf("Err = %v, want context.Canceled", cur.Err())
	}
	if seen >= 5000 {
		t.Fatal("cursor drained the whole scan despite cancellation")
	}
	// Lock released: a write must succeed.
	if err := c.Insert(NewInterval(1, 2), 99999); err != nil {
		t.Fatal(err)
	}
}

// TestInsertMany checks the batched DML path against per-row inserts on
// every method, including validation refusing a bad batch atomically.
func TestInsertMany(t *testing.T) {
	for _, method := range []string{AccessMethodRITree, AccessMethodHINT, AccessMethodHINTSharded} {
		db, err := OpenMemory()
		if err != nil {
			t.Fatal(err)
		}
		c, err := db.CreateCollection("c", AccessMethod(method))
		if err != nil {
			t.Fatal(err)
		}
		var batch []IntervalRow
		for i := 0; i < 200; i++ {
			batch = append(batch, IntervalRow{NewInterval(int64(i), int64(i+5)), int64(i)})
		}
		if err := c.InsertMany(batch); err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if got := c.Count(); got != 200 {
			t.Fatalf("%s: Count = %d", method, got)
		}
		ids, err := c.Intersecting(NewInterval(100, 101))
		if err != nil {
			t.Fatal(err)
		}
		if len(ids) != 7 {
			t.Fatalf("%s: Intersecting after InsertMany = %v", method, ids)
		}
		// A batch with an invalid row is refused atomically.
		bad := []IntervalRow{{NewInterval(1, 2), 900}, {Interval{Lower: 9, Upper: 3}, 901}}
		if err := c.InsertMany(bad); err == nil {
			t.Fatalf("%s: invalid batch accepted", method)
		}
		if got := c.Count(); got != 200 {
			t.Fatalf("%s: Count after refused batch = %d, want 200", method, got)
		}
		db.Close()
	}
}
